//! Property tests for the auto-reducer's three-part contract (stated in
//! the `reduce` module docs): reduction is **deterministic** in
//! `(workload, seed)`, **terminating** within its pass/eval bounds, and
//! **predicate-preserving**.
//!
//! The reducer only ever observes the divergence predicate as a black
//! box, so cheap structural predicates exercise exactly the same loop
//! as a real engine-divergence check — these tests sweep generated
//! workloads across profiles, generator seeds and reduction seeds.

use dynsum_workloads::reduce::{reduce, ReduceOptions};
use dynsum_workloads::wire::parse_workload;
use dynsum_workloads::{generate, GeneratorOptions, Workload, PROFILES};
use proptest::prelude::*;

/// Stand-ins for "the divergence still reproduces". `NullAndDeref` is
/// the skeleton of a real null-deref reproducer; `ManyMethods` forces
/// the coarse `method` tier to keep most of its candidates, so passes
/// commit deletions in finer tiers too.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pred {
    NullAndDeref,
    HasFactory,
    ManyMethods,
}

impl Pred {
    fn eval(self, w: &Workload) -> bool {
        match self {
            Pred::NullAndDeref => w.pag.objs().any(|(_, o)| o.is_null) && !w.info.derefs.is_empty(),
            Pred::HasFactory => !w.info.factories.is_empty(),
            Pred::ManyMethods => w.pag.num_methods() >= 4,
        }
    }
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    prop_oneof![
        Just(Pred::NullAndDeref),
        Just(Pred::HasFactory),
        Just(Pred::ManyMethods),
    ]
}

/// Scale-0 workloads (the generator's structural minimum) across every
/// benchmark profile — small enough that a full reduction runs in
/// milliseconds, varied enough to cover every wire-line kind.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    (0usize..PROFILES.len(), 0u64..1 << 32).prop_map(|(p, seed)| {
        generate(
            &PROFILES[p],
            &GeneratorOptions {
                scale: 0.0,
                seed,
                ..GeneratorOptions::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same `(workload, seed)`, same reproducer — byte-identical text
    /// and identical counters, run to run.
    #[test]
    fn reduction_is_deterministic_in_workload_and_seed(
        w in workload_strategy(),
        seed in any::<u64>(),
        pred in pred_strategy(),
    ) {
        let opts = ReduceOptions { seed, ..ReduceOptions::default() };
        let a = reduce(&w, &opts, |w| pred.eval(w));
        let b = reduce(&w, &opts, |w| pred.eval(w));
        prop_assert_eq!(&a.text, &b.text);
        prop_assert_eq!(a.final_lines, b.final_lines);
        prop_assert_eq!(a.deletions, b.deletions);
        prop_assert_eq!(a.predicate_evals, b.predicate_evals);
    }

    /// Every committed deletion strictly shrinks the line count (so the
    /// deletion count is bounded by the lines available), and the eval
    /// cap bounds predicate work even when it is set adversarially low.
    #[test]
    fn reduction_terminates_within_its_bounds(
        w in workload_strategy(),
        seed in any::<u64>(),
        max_evals in 1usize..40,
        pred in pred_strategy(),
    ) {
        let opts = ReduceOptions { seed, max_evals, ..ReduceOptions::default() };
        let out = reduce(&w, &opts, |w| pred.eval(w));
        prop_assert!(out.final_lines <= out.initial_lines);
        prop_assert!(
            out.final_lines + out.deletions <= out.initial_lines,
            "{} deletions did not each shrink {} -> {}",
            out.deletions, out.initial_lines, out.final_lines
        );
        prop_assert!(out.predicate_evals <= max_evals);
    }

    /// When the input reproduces, so do the reduced workload *and* the
    /// re-parsed artifact text; when it does not, the input comes back
    /// untouched (the caller's divergence was flaky — its own finding).
    #[test]
    fn reduction_preserves_the_predicate(
        w in workload_strategy(),
        seed in any::<u64>(),
        pred in pred_strategy(),
    ) {
        let opts = ReduceOptions { seed, ..ReduceOptions::default() };
        let out = reduce(&w, &opts, |w| pred.eval(w));
        if pred.eval(&w) {
            prop_assert!(pred.eval(&out.workload), "{pred:?} lost in reduction");
            let back = parse_workload(&out.text).expect("reduced text must re-parse");
            prop_assert!(pred.eval(&back), "{pred:?} lost across the wire round-trip");
        } else {
            prop_assert_eq!(out.deletions, 0);
            prop_assert_eq!(out.final_lines, out.initial_lines);
            prop_assert_eq!(out.predicate_evals, 1);
        }
    }
}
