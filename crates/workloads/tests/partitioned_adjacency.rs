//! Property test for the kind-partitioned PAG adjacency: on randomly
//! generated workload graphs, the per-node kind segments must enumerate
//! exactly the same edge multiset as the flat `edges()` view — each edge
//! once per direction, in the segment of its kind, with its payload
//! (far endpoint + field/site operand) inlined faithfully. The derived
//! classification bits (`has_global_in`/`has_global_out`/
//! `has_local_edge`) and the per-field store/load lists are re-derived
//! from the flat view and compared too.

use dynsum_pag::{AdjClass, EdgeKind, Pag};
use dynsum_workloads::{generate, GeneratorOptions, PROFILES};
use proptest::prelude::*;

/// Checks one direction: every (node, class) segment against the flat
/// edge arena. Returns the per-edge visit counts. (Plain asserts: the
/// vendored proptest shim maps `prop_assert!` to `assert!` anyway.)
fn check_direction(pag: &Pag, out: bool) -> Vec<u32> {
    let mut visits = vec![0u32; pag.num_edges()];
    for n in pag.nodes() {
        let mut total = 0;
        for k in AdjClass::ALL {
            let seg = if out {
                pag.out_seg(n, k)
            } else {
                pag.in_seg(n, k)
            };
            total += seg.len();
            for &a in seg {
                let e = pag.edge(a.edge);
                assert_eq!(AdjClass::of(e.kind), k, "entry filed under wrong class");
                let (this_end, far_end) = if out { (e.src, e.dst) } else { (e.dst, e.src) };
                assert_eq!(this_end, n, "edge in the wrong node's adjacency");
                assert_eq!(a.node, far_end, "inline endpoint mismatch");
                match e.kind {
                    EdgeKind::Load(f) | EdgeKind::Store(f) => {
                        assert_eq!(a.field(), f, "inline field operand mismatch")
                    }
                    EdgeKind::Entry(i) | EdgeKind::Exit(i) => {
                        assert_eq!(a.site(), i, "inline site operand mismatch")
                    }
                    EdgeKind::New | EdgeKind::Assign | EdgeKind::AssignGlobal => {}
                }
                visits[a.edge.index()] += 1;
            }
        }
        // The whole-node view is the concatenation of the segments.
        let whole = if out {
            pag.out_edges(n)
        } else {
            pag.in_edges(n)
        };
        assert_eq!(whole.len(), total, "whole-node slice != sum of segments");
    }
    visits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn segments_enumerate_the_flat_edge_multiset(
        profile in 0usize..PROFILES.len(),
        seed in any::<u64>(),
        scale_step in 1usize..=3,
    ) {
        let opts = GeneratorOptions {
            scale: scale_step as f64 * 0.002,
            seed,
            ..GeneratorOptions::default()
        };
        let w = generate(&PROFILES[profile], &opts);
        let pag = &w.pag;

        for out in [true, false] {
            let visits = check_direction(pag, out);
            prop_assert!(
                visits.iter().all(|&c| c == 1),
                "every edge must appear exactly once per direction ({})",
                if out { "out" } else { "in" }
            );
        }

        // Classification bits match a recomputation from the flat view.
        for n in pag.nodes() {
            let flat_global_in = pag
                .edges()
                .iter()
                .any(|e| e.kind.is_global() && e.dst == n);
            let flat_global_out = pag
                .edges()
                .iter()
                .any(|e| e.kind.is_global() && e.src == n);
            let flat_local = pag
                .edges()
                .iter()
                .any(|e| e.kind.is_local() && (e.src == n || e.dst == n));
            prop_assert_eq!(pag.has_global_in(n), flat_global_in);
            prop_assert_eq!(pag.has_global_out(n), flat_global_out);
            prop_assert_eq!(pag.has_local_edge(n), flat_local);
        }

        // Field-indexed store/load lists match the flat view.
        for (f, _) in pag.fields() {
            let flat_stores = pag
                .edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Store(f))
                .count();
            let flat_loads = pag
                .edges()
                .iter()
                .filter(|e| e.kind == EdgeKind::Load(f))
                .count();
            prop_assert_eq!(pag.stores_of(f).len(), flat_stores);
            prop_assert_eq!(pag.loads_of(f).len(), flat_loads);
            for &fe in pag.stores_of(f) {
                let e = pag.edge(fe.edge);
                prop_assert_eq!(e.kind, EdgeKind::Store(f));
                prop_assert_eq!((fe.src, fe.dst), (e.src, e.dst));
            }
            for &fe in pag.loads_of(f) {
                let e = pag.edge(fe.edge);
                prop_assert_eq!(e.kind, EdgeKind::Load(f));
                prop_assert_eq!((fe.src, fe.dst), (e.src, e.dst));
            }
        }
    }
}
