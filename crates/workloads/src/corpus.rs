//! A small corpus of complete mini-Java programs, used by examples and
//! integration tests to exercise the full source → PAG → analysis
//! pipeline on hand-understood code.

/// A named source program.
#[derive(Debug, Clone, Copy)]
pub struct CorpusProgram {
    /// Short name.
    pub name: &'static str,
    /// What the program exercises.
    pub description: &'static str,
    /// The source text.
    pub source: &'static str,
}

/// Container polymorphism: two boxes, one payload each — the classic
/// context-sensitivity litmus test.
pub const BOXES: CorpusProgram = CorpusProgram {
    name: "boxes",
    description:
        "two containers with distinct payloads; context-sensitive analyses keep them apart",
    source: r#"
class Box {
    Object item;
    void put(Object x) { this.item = x; }
    Object take() { return this.item; }
}
class Apple { }
class Orange { }
class Main {
    static void main() {
        Box a = new Box();
        a.put(new Apple());
        Box b = new Box();
        b.put(new Orange());
        Apple x = (Apple) a.take();
        Orange y = (Orange) b.take();
    }
}
"#,
};

/// Virtual dispatch through a hierarchy, with an unsafe downcast.
pub const SHAPES: CorpusProgram = CorpusProgram {
    name: "shapes",
    description: "virtual dispatch, overriding, and one deliberately unsafe cast",
    source: r#"
class Shape {
    Shape clone2() { return new Shape(); }
}
class Circle extends Shape {
    Shape clone2() { return new Circle(); }
}
class Square extends Shape {
    Shape clone2() { return new Square(); }
}
class Main {
    static void main() {
        Shape s = new Circle();
        Shape c = s.clone2();
        Circle ok = (Circle) c;
        Square bad = (Square) c;
    }
}
"#,
};

/// Static fields as global channels between unrelated methods.
pub const REGISTRY: CorpusProgram = CorpusProgram {
    name: "registry",
    description: "globals (static fields) carry objects context-insensitively",
    source: r#"
class Registry {
    static Object current;
    static void publish(Object x) { Registry.current = x; }
    static Object fetch() { return Registry.current; }
}
class Main {
    static void main() {
        Registry.publish(new Main());
        Object got = Registry.fetch();
        Main m = (Main) got;
    }
}
"#,
};

/// Linked list: recursion in both the heap (next chain) and the call
/// graph (recursive walk).
pub const LINKED_LIST: CorpusProgram = CorpusProgram {
    name: "linked-list",
    description: "recursive data structure + recursive method (call-graph cycle collapsed)",
    source: r#"
class Node {
    Node next;
    Object value;
    void link(Node n) { this.next = n; }
    Node tail() {
        Node n = this.next;
        if (n == null) { return this; }
        return n.tail();
    }
}
class Main {
    static void main() {
        Node head = new Node();
        Node second = new Node();
        head.link(second);
        second.value = new Main();
        Node t = head.tail();
        Object v = t.value;
    }
}
"#,
};

/// Factory methods: one fresh, one cached through a static field.
pub const FACTORIES: CorpusProgram = CorpusProgram {
    name: "factories",
    description: "a genuine factory and a caching impostor for the FactoryM client",
    source: r#"
class Widget { }
class Maker {
    static Widget shared;
    Widget fresh() { return new Widget(); }
    Widget cached() {
        Widget w = Maker.shared;
        if (w == null) { w = new Widget(); Maker.shared = w; }
        return w;
    }
}
class Main {
    static void main() {
        Maker m = new Maker();
        Widget a = m.fresh();
        Widget b = m.cached();
    }
}
"#,
};

/// Null flows for the NullDeref client.
pub const NULLS: CorpusProgram = CorpusProgram {
    name: "nulls",
    description: "null values reaching (and missing) dereference sites",
    source: r#"
class Holder {
    Object v;
    Object get() { return this.v; }
}
class Main {
    static void main() {
        Holder safe = new Holder();
        safe.v = new Main();
        Object s = safe.get();
        Holder risky = new Holder();
        risky.v = null;
        Object r = risky.get();
        Holder gone = null;
        Object g = gone.get();
    }
}
"#,
};

/// Every corpus program.
pub const ALL: [CorpusProgram; 6] = [BOXES, SHAPES, REGISTRY, LINKED_LIST, FACTORIES, NULLS];

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_frontend::compile;

    #[test]
    fn every_corpus_program_compiles_and_validates() {
        for p in &ALL {
            let c = compile(p.source)
                .unwrap_or_else(|e| panic!("{} failed: {}", p.name, e.render(p.source)));
            assert!(
                dynsum_pag::validate(&c.pag).is_empty(),
                "{} produced an invalid PAG",
                p.name
            );
            assert!(c.info.entry.is_some(), "{} has no main", p.name);
        }
    }

    #[test]
    fn corpus_covers_all_three_clients() {
        let mut casts = 0;
        let mut derefs = 0;
        let mut factories = 0;
        for p in &ALL {
            let c = compile(p.source).unwrap();
            casts += c.info.casts.len();
            derefs += c.info.derefs.len();
            factories += c.info.factories.len();
        }
        assert!(casts >= 4);
        assert!(derefs >= 10);
        assert!(factories >= 3);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}
