//! The synthetic benchmark generator.
//!
//! The paper's evaluation needs the PAGs of nine large Java programs
//! (Soot/Spark exports of SPECjvm98/DaCapo benchmarks) which cannot be
//! rebuilt here; this generator is the documented substitution
//! (DESIGN.md §2). It synthesizes PAGs that preserve what the algorithms
//! are sensitive to:
//!
//! * **shape ratios** — per-kind edge counts scaled from the Table 3
//!   profile, in particular *locality* (fraction of local edges), which
//!   bounds how much work DYNSUM can summarize;
//! * **library fan-in** — a small tier of container classes
//!   (`Box`-like single-field and `Vector`-like two-level) called from
//!   many application methods, so the same summaries are wanted under
//!   many different calling contexts (the paper's reuse source);
//! * **shared field names** — containers draw fields from a small pool,
//!   so REFINEPTS's field-based first pass conflates unrelated
//!   containers and must refine;
//! * **client sites** — downcasts (mostly provable, some planted
//!   violations), dereferences (some reachable from `null`), and both
//!   fresh and caching factory methods, in the profile's proportions.
//!
//! Generation is deterministic in `(profile, options)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dynsum_pag::{
    CastSite, ClassId, DerefSite, FactoryCandidate, FieldId, MethodId, Pag, PagBuilder,
    ProgramInfo, VarId,
};

use crate::profiles::BenchmarkProfile;

/// A generated benchmark: PAG plus client metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (profile name).
    pub name: String,
    /// The generated graph.
    pub pag: Pag,
    /// Client query sites.
    pub info: ProgramInfo,
}

/// Generator options.
///
/// The three adversarial knobs ([`recursion_bias`](Self::recursion_bias),
/// [`field_chain`](Self::field_chain), [`null_bias`](Self::null_bias))
/// default to the values the generator has always used, so default
/// options reproduce the historical byte-identical output for any
/// `(profile, scale, seed)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorOptions {
    /// Linear scale factor applied to every profile count (1.0 = paper
    /// size). The default, 0.02, yields graphs of a few thousand nodes —
    /// laptop-scale yet large enough for the performance shapes.
    ///
    /// Validated range: finite, `0.0..=`[`MAX_SCALE`]. `0.0` is legal
    /// and yields the per-kind minimum quotas (every client still gets a
    /// non-empty site list); anything outside the range is a typed
    /// [`GeneratorError`] from [`try_generate`].
    pub scale: f64,
    /// RNG seed; same seed + profile ⇒ identical workload.
    pub seed: u64,
    /// Probability (per application method) of planting *extra*
    /// recursion beyond the baseline every-40th self-call: a recursive
    /// self-call plus, half the time, a recursive back-call into an
    /// earlier application method (a two-method call-graph cycle).
    /// `0.0` (the default) preserves the historical output exactly.
    /// Range `0.0..=1.0`.
    pub recursion_bias: f64,
    /// Depth of the pathological nested-field chains planted in every
    /// other application method: `d` chained `store(chain_k)` hops
    /// followed by the matching load chain, so a demand query on the
    /// chain's tail must grow a field stack `d` deep before it can
    /// resolve. Each planted tail also becomes a `NullDeref` site, so
    /// client query streams actually traverse the chains. `0` (the
    /// default) plants nothing.
    pub field_chain: usize,
    /// Fraction of app-method payload allocations that are null objects
    /// (feeds the `NullDeref` client refutations). The default, `0.12`,
    /// is the generator's historical constant. Range `0.0..=1.0`.
    pub null_bias: f64,
}

/// Upper bound on [`GeneratorOptions::scale`]: 64× the paper-sized
/// benchmarks is already tens of millions of edges; anything bigger is
/// almost certainly a bug in the caller (and would exhaust memory long
/// before producing a useful workload).
pub const MAX_SCALE: f64 = 64.0;

/// Upper bound on [`GeneratorOptions::field_chain`]: deeper chains only
/// multiply generation cost — every demand engine aborts conservatively
/// at `EngineConfig::max_field_depth` (default 512) anyway.
pub const MAX_FIELD_CHAIN: usize = 4096;

impl Default for GeneratorOptions {
    fn default() -> Self {
        GeneratorOptions {
            scale: 0.02,
            seed: 0xD45,
            recursion_bias: 0.0,
            field_chain: 0,
            null_bias: 0.12,
        }
    }
}

/// A rejected [`GeneratorOptions`] value: the typed alternative to
/// panicking (or OOMing) on adversarial inputs. Returned by
/// [`try_generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeneratorError {
    /// `scale` is NaN or infinite.
    ScaleNotFinite {
        /// The offending value.
        scale: f64,
    },
    /// `scale` is negative or exceeds [`MAX_SCALE`].
    ScaleOutOfRange {
        /// The offending value.
        scale: f64,
        /// The inclusive maximum.
        max: f64,
    },
    /// A probability knob is NaN or outside `0.0..=1.0`.
    BiasOutOfRange {
        /// Which knob (`"recursion_bias"` / `"null_bias"`).
        knob: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `field_chain` exceeds [`MAX_FIELD_CHAIN`].
    FieldChainTooDeep {
        /// The offending value.
        depth: usize,
        /// The inclusive maximum.
        max: usize,
    },
}

impl std::fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeneratorError::ScaleNotFinite { scale } => {
                write!(f, "generator scale must be finite, got {scale}")
            }
            GeneratorError::ScaleOutOfRange { scale, max } => {
                write!(f, "generator scale {scale} outside 0.0..={max}")
            }
            GeneratorError::BiasOutOfRange { knob, value } => {
                write!(f, "generator {knob} {value} outside 0.0..=1.0")
            }
            GeneratorError::FieldChainTooDeep { depth, max } => {
                write!(f, "generator field_chain {depth} exceeds {max}")
            }
        }
    }
}

impl std::error::Error for GeneratorError {}

fn validate(opts: &GeneratorOptions) -> Result<(), GeneratorError> {
    if !opts.scale.is_finite() {
        return Err(GeneratorError::ScaleNotFinite { scale: opts.scale });
    }
    if !(0.0..=MAX_SCALE).contains(&opts.scale) {
        return Err(GeneratorError::ScaleOutOfRange {
            scale: opts.scale,
            max: MAX_SCALE,
        });
    }
    for (knob, value) in [
        ("recursion_bias", opts.recursion_bias),
        ("null_bias", opts.null_bias),
    ] {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            return Err(GeneratorError::BiasOutOfRange { knob, value });
        }
    }
    if opts.field_chain > MAX_FIELD_CHAIN {
        return Err(GeneratorError::FieldChainTooDeep {
            depth: opts.field_chain,
            max: MAX_FIELD_CHAIN,
        });
    }
    Ok(())
}

/// Generates a workload for a Table 3 profile, validating the options
/// first.
///
/// # Errors
///
/// Returns a [`GeneratorError`] for adversarial options — non-finite,
/// negative or huge `scale`, out-of-range probability knobs, or an
/// absurd `field_chain` — instead of panicking or exhausting memory.
/// `scale == 0.0` is *not* an error: it produces the minimum-quota
/// workload, which still carries a non-empty site list for every client.
pub fn try_generate(
    profile: &BenchmarkProfile,
    opts: &GeneratorOptions,
) -> Result<Workload, GeneratorError> {
    validate(opts)?;
    Ok(Gen::new(profile, opts).run())
}

/// Generates a workload for a Table 3 profile.
///
/// # Panics
///
/// Panics on options [`try_generate`] would reject; callers handling
/// untrusted options should use [`try_generate`] instead.
pub fn generate(profile: &BenchmarkProfile, opts: &GeneratorOptions) -> Workload {
    try_generate(profile, opts).expect("invalid GeneratorOptions")
}

/// Remaining per-kind quotas (signed: padding stops at zero, the main
/// loop may overshoot slightly).
#[derive(Debug, Clone, Copy)]
struct Quota {
    objs: i64,
    locals: i64,
    assign: i64,
    load: i64,
    store: i64,
    entry: i64,
    exit: i64,
    ag: i64,
    casts: i64,
    derefs: i64,
    factories: i64,
}

#[derive(Clone)]
struct LibContainer {
    class: ClassId,
    /// `put`-like method: `(this, param)` formals.
    put_this: VarId,
    put_param: VarId,
    /// `get`-like method: `(this, ret)`.
    get_this: VarId,
    get_ret: VarId,
    /// Two-level containers have an `init` to call after allocation.
    init_this: Option<VarId>,
    /// `clear`-like method that stores `null` into the container's
    /// field. Mostly dead code — but its store edge pairs with every
    /// same-field load under *field-based* matching, forcing REFINEPTS
    /// to refine NullDeref queries (as real Java library code does).
    clear_this: VarId,
}

struct Gen<'p> {
    profile: &'p BenchmarkProfile,
    opts: GeneratorOptions,
    rng: SmallRng,
    b: PagBuilder,
    q: Quota,
    info: ProgramInfo,
    slots: Vec<FieldId>,
    /// Distinct fields for the pathological nested chains (empty unless
    /// `opts.field_chain > 0`).
    chain_fields: Vec<FieldId>,
    elems: FieldId,
    arr: FieldId,
    data: FieldId,
    pad: FieldId,
    containers: Vec<LibContainer>,
    payload_classes: Vec<ClassId>,
    globals: Vec<VarId>,
    /// Factory methods callable from app code: `(ret_var)`.
    factory_rets: Vec<VarId>,
    /// App methods callable from later app methods: `(param, ret)`.
    app_callables: Vec<(VarId, VarId)>,
    /// Padding material: `(method, container chain vars, container idx,
    /// payload-ish var)`.
    pad_sites: Vec<(MethodId, Vec<VarId>, usize, VarId)>,
    counter: usize,
}

impl<'p> Gen<'p> {
    fn new(profile: &'p BenchmarkProfile, opts: &GeneratorOptions) -> Self {
        let s = opts.scale;
        let scaled = |x: u64, min: i64| (((x as f64) * s).round() as i64).max(min);
        let q = Quota {
            objs: scaled(profile.objs, 24),
            locals: scaled(profile.locals, 64),
            assign: scaled(profile.assign, 64),
            load: scaled(profile.load, 24),
            store: scaled(profile.store, 12),
            entry: scaled(profile.entry, 24),
            exit: scaled(profile.exit, 8),
            ag: scaled(profile.assignglobal, 4),
            casts: scaled(profile.q_safecast, 8),
            derefs: scaled(profile.q_nullderef, 12),
            factories: scaled(profile.q_factory, 6),
        };
        Gen {
            profile,
            opts: *opts,
            rng: SmallRng::seed_from_u64(opts.seed ^ hash_name(profile.name)),
            b: PagBuilder::new(),
            q,
            info: ProgramInfo::default(),
            slots: Vec::new(),
            chain_fields: Vec::new(),
            elems: FieldId::from_raw(0),
            arr: FieldId::from_raw(0),
            data: FieldId::from_raw(0),
            pad: FieldId::from_raw(0),
            containers: Vec::new(),
            payload_classes: Vec::new(),
            globals: Vec::new(),
            factory_rets: Vec::new(),
            app_callables: Vec::new(),
            pad_sites: Vec::new(),
            counter: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    /// Appends a `len`-long assign chain starting at `src`, returning
    /// the final variable. Consumes local and assign quota.
    fn chain_locals(&mut self, m: MethodId, prefix: &str, src: VarId, len: usize) -> VarId {
        let mut cur = src;
        for k in 0..len {
            let v = self.b.add_local(&format!("{prefix}{k}"), m, None).unwrap();
            self.b.add_assign(cur, v).unwrap();
            self.q.locals -= 1;
            self.q.assign -= 1;
            cur = v;
        }
        cur
    }

    fn run(mut self) -> Workload {
        self.setup_fields_and_classes();
        self.setup_globals();
        self.setup_library();
        self.setup_factories();

        let mut app_index = 0usize;
        while (self.q.casts > 0 || self.q.derefs > 0 || self.q.objs > 8 || self.q.entry > 4)
            && app_index < 200_000
        {
            self.app_method(app_index);
            app_index += 1;
        }
        self.pad_quotas();
        self.pad_locality(self.profile.locality());

        let pag = self.b.finish();
        debug_assert!(dynsum_pag::validate(&pag).is_empty());
        Workload {
            name: self.profile.name.to_owned(),
            pag,
            info: self.info,
        }
    }

    fn setup_fields_and_classes(&mut self) {
        for i in 0..6 {
            let f = self.b.field(&format!("slot{i}"));
            self.slots.push(f);
        }
        self.elems = self.b.field("elems");
        self.arr = self.b.array_field();
        self.data = self.b.field("data");
        self.pad = self.b.field("padslot");
        if self.opts.field_chain > 0 {
            // Distinct fields per chain level (cycled past 32) so a
            // query must *match* the store order, not merely reuse one
            // field edge.
            for i in 0..self.opts.field_chain.min(32) {
                let f = self.b.field(&format!("chain{i}"));
                self.chain_fields.push(f);
            }
        }

        let base = self.b.add_class("Payload", None).expect("fresh class");
        let n_payload = ((self.q.objs / 80).clamp(3, 24)) as usize;
        for i in 0..n_payload {
            let c = self
                .b
                .add_class(&format!("P{i}"), Some(base))
                .expect("fresh class");
            self.payload_classes.push(c);
        }
    }

    fn setup_globals(&mut self) {
        let n = ((self.profile.globals as f64).sqrt() as usize).clamp(3, 40);
        for i in 0..n {
            let g = self
                .b
                .add_global(&format!("G{i}"), None)
                .expect("fresh global");
            self.globals.push(g);
        }
    }

    fn setup_library(&mut self) {
        let n_lib = ((self.q.entry / 40).clamp(2, 24)) as usize;
        for i in 0..n_lib {
            let class = self
                .b
                .add_class(&format!("C{i}"), None)
                .expect("fresh class");
            let slot = self.slots[i % self.slots.len()];
            if i % 2 == 1 {
                // Deep container (Vector-like, Figure 2).
                let m_init = self
                    .b
                    .add_method(&format!("C{i}.init"), Some(class))
                    .unwrap();
                let this_i = self
                    .b
                    .add_local(&format!("C{i}.init#this"), m_init, Some(class))
                    .unwrap();
                let t_i = self
                    .b
                    .add_local(&format!("C{i}.init#t"), m_init, None)
                    .unwrap();
                let oarr = self
                    .b
                    .add_obj(&format!("oarr{i}"), None, Some(m_init))
                    .unwrap();
                self.b.add_new(oarr, t_i).unwrap();
                self.b.add_store(self.elems, t_i, this_i).unwrap();
                self.q.objs -= 1;
                self.q.locals -= 2;
                self.q.store -= 1;

                let m_add = self
                    .b
                    .add_method(&format!("C{i}.add"), Some(class))
                    .unwrap();
                let this_a = self
                    .b
                    .add_local(&format!("C{i}.add#this"), m_add, Some(class))
                    .unwrap();
                let p_a = self
                    .b
                    .add_local(&format!("C{i}.add#p"), m_add, None)
                    .unwrap();
                // Real library methods are not two-liners: route the
                // payload and the backing array through local chains so
                // each summary covers real work (this is what makes
                // summary reuse worth anything).
                let p_end = self.chain_locals(m_add, &format!("C{i}.add#pc"), p_a, 3);
                let t_a = self
                    .b
                    .add_local(&format!("C{i}.add#t"), m_add, None)
                    .unwrap();
                self.b.add_load(self.elems, this_a, t_a).unwrap();
                let t_end = self.chain_locals(m_add, &format!("C{i}.add#tc"), t_a, 2);
                self.b.add_store(self.arr, p_end, t_end).unwrap();
                self.q.locals -= 3;
                self.q.load -= 1;
                self.q.store -= 1;

                let m_get = self
                    .b
                    .add_method(&format!("C{i}.get"), Some(class))
                    .unwrap();
                let this_g = self
                    .b
                    .add_local(&format!("C{i}.get#this"), m_get, Some(class))
                    .unwrap();
                let t_g = self
                    .b
                    .add_local(&format!("C{i}.get#t"), m_get, None)
                    .unwrap();
                let mid_g = self
                    .b
                    .add_local(&format!("C{i}.get#mid"), m_get, None)
                    .unwrap();
                let r_g = self
                    .b
                    .add_local(&format!("C{i}.get#ret"), m_get, None)
                    .unwrap();
                self.b.add_load(self.elems, this_g, t_g).unwrap();
                let t_end = self.chain_locals(m_get, &format!("C{i}.get#tc"), t_g, 2);
                self.b.add_load(self.arr, t_end, mid_g).unwrap();
                let mid_end = self.chain_locals(m_get, &format!("C{i}.get#mc"), mid_g, 3);
                self.b.add_assign(mid_end, r_g).unwrap();
                self.q.locals -= 4;
                self.q.load -= 2;
                self.q.assign -= 1;

                // clear(this) { t = this.elems; t[*] = null }
                let m_clear = self
                    .b
                    .add_method(&format!("C{i}.clear"), Some(class))
                    .unwrap();
                let this_c = self
                    .b
                    .add_local(&format!("C{i}.clear#this"), m_clear, Some(class))
                    .unwrap();
                let t_c = self
                    .b
                    .add_local(&format!("C{i}.clear#t"), m_clear, None)
                    .unwrap();
                let nl = self
                    .b
                    .add_local(&format!("C{i}.clear#nl"), m_clear, None)
                    .unwrap();
                let on = self
                    .b
                    .add_null_obj(&format!("onull_clear{i}"), Some(m_clear))
                    .unwrap();
                self.b.add_new(on, nl).unwrap();
                self.b.add_load(self.elems, this_c, t_c).unwrap();
                self.b.add_store(self.arr, nl, t_c).unwrap();
                self.q.objs -= 1;
                self.q.locals -= 3;
                self.q.load -= 1;
                self.q.store -= 1;

                self.containers.push(LibContainer {
                    class,
                    put_this: this_a,
                    put_param: p_a,
                    get_this: this_g,
                    get_ret: r_g,
                    init_this: Some(this_i),
                    clear_this: this_c,
                });
            } else {
                // Shallow container (Box-like).
                let m_put = self
                    .b
                    .add_method(&format!("C{i}.put"), Some(class))
                    .unwrap();
                let this_p = self
                    .b
                    .add_local(&format!("C{i}.put#this"), m_put, Some(class))
                    .unwrap();
                let p_p = self
                    .b
                    .add_local(&format!("C{i}.put#p"), m_put, None)
                    .unwrap();
                let p_end = self.chain_locals(m_put, &format!("C{i}.put#pc"), p_p, 4);
                self.b.add_store(slot, p_end, this_p).unwrap();
                self.q.locals -= 2;
                self.q.store -= 1;

                let m_take = self
                    .b
                    .add_method(&format!("C{i}.take"), Some(class))
                    .unwrap();
                let this_t = self
                    .b
                    .add_local(&format!("C{i}.take#this"), m_take, Some(class))
                    .unwrap();
                let mid_t = self
                    .b
                    .add_local(&format!("C{i}.take#mid"), m_take, None)
                    .unwrap();
                let r_t = self
                    .b
                    .add_local(&format!("C{i}.take#ret"), m_take, None)
                    .unwrap();
                self.b.add_load(slot, this_t, mid_t).unwrap();
                let mid_end = self.chain_locals(m_take, &format!("C{i}.take#mc"), mid_t, 4);
                self.b.add_assign(mid_end, r_t).unwrap();
                self.q.locals -= 3;
                self.q.load -= 1;
                self.q.assign -= 1;

                // clear(this) { this.slot = null }
                let m_clear = self
                    .b
                    .add_method(&format!("C{i}.clear"), Some(class))
                    .unwrap();
                let this_c = self
                    .b
                    .add_local(&format!("C{i}.clear#this"), m_clear, Some(class))
                    .unwrap();
                let nl = self
                    .b
                    .add_local(&format!("C{i}.clear#nl"), m_clear, None)
                    .unwrap();
                let on = self
                    .b
                    .add_null_obj(&format!("onull_clear{i}"), Some(m_clear))
                    .unwrap();
                self.b.add_new(on, nl).unwrap();
                self.b.add_store(slot, nl, this_c).unwrap();
                self.q.objs -= 1;
                self.q.locals -= 2;
                self.q.store -= 1;

                self.containers.push(LibContainer {
                    class,
                    put_this: this_p,
                    put_param: p_p,
                    get_this: this_t,
                    get_ret: r_t,
                    init_this: None,
                    clear_this: this_c,
                });
            }
        }
    }

    fn setup_factories(&mut self) {
        let n = self.q.factories.max(1) as usize;

        // Shared validation helpers (think `Objects.requireNonNull`):
        // every factory funnels its product through one, so factory
        // queries traverse library code whose summaries are reusable —
        // the paper's FactoryM speedup source (its smallest, 1.37x).
        let n_helpers = (n / 8).max(1);
        let mut helpers: Vec<(VarId, VarId)> = Vec::new();
        for h in 0..n_helpers {
            let m = self.b.add_method(&format!("validate{h}"), None).unwrap();
            let v = self
                .b
                .add_local(&format!("validate{h}#v"), m, None)
                .unwrap();
            let mid = self
                .b
                .add_local(&format!("validate{h}#mid"), m, None)
                .unwrap();
            let r = self
                .b
                .add_local(&format!("validate{h}#ret"), m, None)
                .unwrap();
            self.b.add_assign(v, mid).unwrap();
            self.b.add_assign(mid, r).unwrap();
            self.q.locals -= 3;
            self.q.assign -= 2;
            helpers.push((v, r));
        }

        for i in 0..n {
            let fresh = i % 3 != 2; // two thirds genuinely fresh
            let name = self.fresh("factory");
            let m = self.b.add_method(&name, None).expect("fresh method");
            let x = self.b.add_local(&format!("{name}#x"), m, None).unwrap();
            let ret = self.b.add_local(&format!("{name}#ret"), m, None).unwrap();
            self.q.locals -= 2;
            if fresh {
                let class = self.pick_payload();
                let label = self.fresh("ofac");
                let o = self.b.add_obj(&label, Some(class), Some(m)).unwrap();
                self.b.add_new(o, x).unwrap();
                self.q.objs -= 1;
            } else {
                let g = self.pick_global();
                self.b.add_assign(g, x).unwrap();
                self.q.ag -= 1;
            }
            // ret = validate(x)
            let (hv, hr) = helpers[i % helpers.len()];
            let sname = self.fresh("s");
            let site = self.b.add_call_site(&sname, m).unwrap();
            self.b.add_entry(site, x, hv).unwrap();
            self.b.add_exit(site, hr, ret).unwrap();
            self.q.entry -= 1;
            self.q.exit -= 1;
            if self.q.factories > 0 {
                self.info
                    .factories
                    .push(FactoryCandidate { method: m, ret });
                self.q.factories -= 1;
            }
            self.factory_rets.push(ret);
        }
    }

    fn pick_payload(&mut self) -> ClassId {
        let i = self.rng.gen_range(0..self.payload_classes.len());
        self.payload_classes[i]
    }

    fn pick_sibling(&mut self, not: ClassId) -> ClassId {
        if self.payload_classes.len() == 1 {
            return not;
        }
        loop {
            let c = self.pick_payload();
            if c != not {
                return c;
            }
        }
    }

    fn pick_global(&mut self) -> VarId {
        let i = self.rng.gen_range(0..self.globals.len());
        self.globals[i]
    }

    /// Biased pick: few containers receive most call sites (library
    /// fan-in — the reuse DYNSUM exploits).
    fn pick_container(&mut self) -> usize {
        let r: f64 = self.rng.gen();
        let idx = (r * r * self.containers.len() as f64) as usize;
        idx.min(self.containers.len() - 1)
    }

    /// Stamps one application method: allocate a container, push a
    /// payload through it, read it back, cast it, dereference it.
    fn app_method(&mut self, index: usize) {
        let name = self.fresh("app");
        let m = self.b.add_method(&name, None).expect("fresh method");
        let param = self.b.add_local(&format!("{name}#param"), m, None).unwrap();
        self.q.locals -= 1;

        // Keep the incoming parameter alive without polluting the
        // pattern's precision.
        let sink = self.b.add_local(&format!("{name}#sink"), m, None).unwrap();
        self.b.add_assign(param, sink).unwrap();
        self.q.locals -= 1;
        self.q.assign -= 1;

        // Container: fresh allocation (with init for deep containers) or
        // read back from a global.
        let ci = self.pick_container();
        let cont = self.containers[ci].clone();
        let c0 = self.b.add_local(&format!("{name}#c0"), m, None).unwrap();
        self.q.locals -= 1;
        if self.rng.gen_bool(0.8) || self.globals.is_empty() {
            let label = self.fresh("oc");
            let o = self.b.add_obj(&label, Some(cont.class), Some(m)).unwrap();
            self.b.add_new(o, c0).unwrap();
            self.q.objs -= 1;
            if let Some(init_this) = cont.init_this {
                let site = self.fresh("s");
                let site = self.b.add_call_site(&site, m).unwrap();
                self.b.add_entry(site, c0, init_this).unwrap();
                self.q.entry -= 1;
            }
        } else {
            let g = self.pick_global();
            self.b.add_assign(g, c0).unwrap();
            self.q.ag -= 1;
        }

        // Container assign chain.
        let mut chain = vec![c0];
        let chain_len = self.rng.gen_range(1..=4);
        let mut c = c0;
        for k in 0..chain_len {
            let c2 = self
                .b
                .add_local(&format!("{name}#c{}", k + 1), m, None)
                .unwrap();
            self.b.add_assign(c, c2).unwrap();
            self.q.locals -= 1;
            self.q.assign -= 1;
            chain.push(c2);
            c = c2;
        }

        // Payload (occasionally null).
        let pclass = self.pick_payload();
        let p = self.b.add_local(&format!("{name}#p"), m, None).unwrap();
        self.q.locals -= 1;
        let is_null = self.rng.gen_bool(self.opts.null_bias);
        if is_null {
            let label = self.fresh("nul");
            let o = self.b.add_null_obj(&label, Some(m)).unwrap();
            self.b.add_new(o, p).unwrap();
        } else {
            let label = self.fresh("op");
            let o = self.b.add_obj(&label, Some(pclass), Some(m)).unwrap();
            self.b.add_new(o, p).unwrap();
        }
        self.q.objs -= 1;

        // put(c, p)
        let site = self.fresh("s");
        let site = self.b.add_call_site(&site, m).unwrap();
        self.b.add_entry(site, c, cont.put_this).unwrap();
        self.b.add_entry(site, p, cont.put_param).unwrap();
        self.q.entry -= 2;

        // y = get(c)
        let y = self.b.add_local(&format!("{name}#y"), m, None).unwrap();
        self.q.locals -= 1;
        let site2 = self.fresh("s");
        let site2 = self.b.add_call_site(&site2, m).unwrap();
        self.b.add_entry(site2, c, cont.get_this).unwrap();
        self.b.add_exit(site2, cont.get_ret, y).unwrap();
        self.q.entry -= 1;
        self.q.exit -= 1;

        // z = (T) y — cast site. Mostly the true payload class.
        let z = self.b.add_local(&format!("{name}#z"), m, None).unwrap();
        self.b.add_assign(y, z).unwrap();
        self.q.locals -= 1;
        self.q.assign -= 1;
        let target = if self.rng.gen_bool(0.7) {
            pclass
        } else {
            self.pick_sibling(pclass)
        };
        if self.q.casts > 0 {
            self.info.casts.push(CastSite {
                var: z,
                target,
                location: format!("{name}:cast"),
            });
            self.q.casts -= 1;
        }

        // d = z.data — dereference site(s).
        let d = self.b.add_local(&format!("{name}#d"), m, None).unwrap();
        self.b.add_load(self.data, z, d).unwrap();
        self.q.locals -= 1;
        self.q.load -= 1;
        if self.q.derefs > 0 {
            self.info.derefs.push(DerefSite {
                base: z,
                location: format!("{name}:deref"),
            });
            self.q.derefs -= 1;
        }
        if self.q.derefs > 0 && self.rng.gen_bool(0.5) {
            self.info.derefs.push(DerefSite {
                base: c,
                location: format!("{name}:recv"),
            });
            self.q.derefs -= 1;
        }

        // Occasionally escape the container through a global.
        if self.q.ag > 0 && self.rng.gen_bool(0.15) {
            let g = self.pick_global();
            self.b.add_assign(c, g).unwrap();
            self.q.ag -= 1;
        }

        // Occasionally clear a *sacrificial* container: null flows into
        // that object's field only, so precise analyses keep other
        // containers null-free while field-based matching cannot.
        if self.rng.gen_bool(0.2) {
            let sac = self.b.add_local(&format!("{name}#sac"), m, None).unwrap();
            let label = self.fresh("osac");
            let so = self.b.add_obj(&label, Some(cont.class), Some(m)).unwrap();
            self.b.add_new(so, sac).unwrap();
            let sites = self.fresh("s");
            let sites = self.b.add_call_site(&sites, m).unwrap();
            self.b.add_entry(sites, sac, cont.clear_this).unwrap();
            self.q.locals -= 1;
            self.q.objs -= 1;
            self.q.entry -= 1;
        }

        // Occasionally consume a factory.
        if !self.factory_rets.is_empty() && self.rng.gen_bool(0.3) {
            let fr = self.factory_rets[self.rng.gen_range(0..self.factory_rets.len())];
            let w = self.b.add_local(&format!("{name}#w"), m, None).unwrap();
            let site3 = self.fresh("s");
            let site3 = self.b.add_call_site(&site3, m).unwrap();
            self.b.add_exit(site3, fr, w).unwrap();
            self.q.locals -= 1;
            self.q.exit -= 1;
        }

        // Occasionally call an earlier app method (deeper call chains).
        if !self.app_callables.is_empty() && self.rng.gen_bool(0.25) {
            let (aparam, aret) =
                self.app_callables[self.rng.gen_range(0..self.app_callables.len())];
            let w2 = self.b.add_local(&format!("{name}#w2"), m, None).unwrap();
            let site4 = self.fresh("s");
            let site4 = self.b.add_call_site(&site4, m).unwrap();
            self.b.add_entry(site4, z, aparam).unwrap();
            self.b.add_exit(site4, aret, w2).unwrap();
            self.q.locals -= 1;
            self.q.entry -= 1;
            self.q.exit -= 1;
        }

        // A sprinkle of recursion: self-call, context-transparent.
        if index % 40 == 39 {
            let site5 = self.fresh("s");
            let site5 = self.b.add_call_site(&site5, m).unwrap();
            self.b.add_entry(site5, z, param).unwrap();
            self.b.set_recursive(site5, true).unwrap();
            self.q.entry -= 1;
        }

        // Adversarial extra recursion (fuzzing knob; the RNG is only
        // consulted when the knob is on, so default output is
        // byte-identical to the historical generator).
        if self.opts.recursion_bias > 0.0 && self.rng.gen_bool(self.opts.recursion_bias) {
            let site6 = self.fresh("s");
            let site6 = self.b.add_call_site(&site6, m).unwrap();
            self.b.add_entry(site6, z, param).unwrap();
            self.b.set_recursive(site6, true).unwrap();
            self.q.entry -= 1;
            if !self.app_callables.is_empty() && self.rng.gen_bool(0.5) {
                // Recursive back-call into an earlier app method: a
                // call-graph cycle spanning two methods.
                let (aparam, aret) =
                    self.app_callables[self.rng.gen_range(0..self.app_callables.len())];
                let w3 = self.b.add_local(&format!("{name}#w3"), m, None).unwrap();
                let site7 = self.fresh("s");
                let site7 = self.b.add_call_site(&site7, m).unwrap();
                self.b.add_entry(site7, param, aparam).unwrap();
                self.b.add_exit(site7, aret, w3).unwrap();
                self.b.set_recursive(site7, true).unwrap();
                self.q.locals -= 1;
                self.q.entry -= 1;
                self.q.exit -= 1;
            }
        }

        // Pathological nested-field chain (fuzzing knob).
        if self.opts.field_chain > 0 && index % 2 == 0 {
            self.plant_field_chain(m, &name, p);
        }

        // Return value: makes this method callable by later ones.
        let retv = self.b.add_local(&format!("{name}#ret"), m, None).unwrap();
        self.b.add_assign(z, retv).unwrap();
        self.q.locals -= 1;
        self.q.assign -= 1;
        self.app_callables.push((param, retv));

        self.pad_sites.push((m, chain, ci, z));
    }

    /// Plants a `field_chain`-deep nested store chain seeded with `src`
    /// plus the matching load chain: `h_k.chain_k = h_{k-1}` for `d`
    /// levels, then loads unwinding in reverse. A backward query from
    /// the tail must stack `d` field frames before it can pop any, so
    /// chains this deep vs `max_field_depth` exercise the conservative
    /// abort path. The tail is registered as a `NullDeref` site so the
    /// client query stream actually walks the chain.
    fn plant_field_chain(&mut self, m: MethodId, name: &str, src: VarId) {
        let d = self.opts.field_chain;
        let mut cur = src;
        for k in 0..d {
            let f = self.chain_fields[k % self.chain_fields.len()];
            let h = self
                .b
                .add_local(&format!("{name}#fch{k}"), m, None)
                .unwrap();
            let label = self.fresh("ofc");
            let o = self.b.add_obj(&label, None, Some(m)).unwrap();
            self.b.add_new(o, h).unwrap();
            self.b.add_store(f, cur, h).unwrap();
            self.q.locals -= 1;
            self.q.objs -= 1;
            self.q.store -= 1;
            cur = h;
        }
        for k in (0..d).rev() {
            let f = self.chain_fields[k % self.chain_fields.len()];
            let t = self
                .b
                .add_local(&format!("{name}#fct{k}"), m, None)
                .unwrap();
            self.b.add_load(f, cur, t).unwrap();
            self.q.locals -= 1;
            self.q.load -= 1;
            cur = t;
        }
        self.info.derefs.push(DerefSite {
            base: cur,
            location: format!("{name}:chain"),
        });
    }

    /// Consumes leftover per-kind quota with precision-neutral filler.
    fn pad_quotas(&mut self) {
        if self.pad_sites.is_empty() {
            return;
        }

        // Assign padding, phase 1: intra-chain links (all chain members
        // already share the same points-to set, so extra links between
        // them change nothing).
        let mut tries = 0;
        while self.q.assign > 0 && tries < 4 * self.q.assign.unsigned_abs() as usize {
            tries += 1;
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let chain = &self.pad_sites[i].1;
            if chain.len() < 2 {
                continue;
            }
            let a = chain[self.rng.gen_range(0..chain.len())];
            let d = chain[self.rng.gen_range(0..chain.len())];
            if a == d {
                continue;
            }
            let before = self.b.num_edges();
            self.b.add_assign(a, d).unwrap();
            if self.b.num_edges() > before {
                self.q.assign -= 1;
            }
        }
        // Assign padding, phase 2: fresh chains off existing vars (also
        // burns remaining local quota).
        while self.q.assign > 0 {
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let (m, src) = {
                let (m, chain, _, _) = &self.pad_sites[i];
                (*m, chain[chain.len() - 1])
            };
            let name = self.fresh("padv");
            let v = self.b.add_local(&name, m, None).unwrap();
            self.b.add_assign(src, v).unwrap();
            self.q.assign -= 1;
            self.q.locals -= 1;
        }

        // Load padding: reads of container slots into fresh temps.
        while self.q.load > 0 {
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let (m, base) = {
                let (m, chain, _, _) = &self.pad_sites[i];
                (*m, chain[0])
            };
            let slot = self.slots[self.rng.gen_range(0..self.slots.len())];
            let name = self.fresh("padl");
            let t = self.b.add_local(&name, m, None).unwrap();
            self.b.add_load(slot, base, t).unwrap();
            self.q.load -= 1;
            self.q.locals -= 1;
        }

        // Store padding: payloads into the never-read pad slot.
        while self.q.store > 0 {
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let (_, chain, _, z) = &self.pad_sites[i];
            let base = chain[0];
            let z = *z;
            let before = self.b.num_edges();
            self.b.add_store(self.pad, z, base).unwrap();
            if self.b.num_edges() > before {
                self.q.store -= 1;
            } else {
                // Edge already exists; fall back to a fresh temp chain.
                let (m, base) = {
                    let (m, chain, _, _) = &self.pad_sites[i];
                    (*m, chain[0])
                };
                let name = self.fresh("pads");
                let t = self.b.add_local(&name, m, None).unwrap();
                self.b.add_assign(base, t).unwrap();
                self.b.add_store(self.pad, t, base).unwrap();
                self.q.store -= 1;
                self.q.locals -= 1;
                self.q.assign -= 1;
            }
        }

        // Entry/exit padding: extra `get` calls through existing chains.
        while self.q.entry > 0 {
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let (m, c, ci) = {
                let (m, chain, ci, _) = &self.pad_sites[i];
                (*m, chain[chain.len() - 1], *ci)
            };
            let cont = self.containers[ci].clone();
            let sname = self.fresh("s");
            let site = self.b.add_call_site(&sname, m).unwrap();
            self.b.add_entry(site, c, cont.get_this).unwrap();
            self.q.entry -= 1;
            if self.q.exit > 0 {
                let name = self.fresh("pady");
                let y = self.b.add_local(&name, m, None).unwrap();
                self.b.add_exit(site, cont.get_ret, y).unwrap();
                self.q.exit -= 1;
                self.q.locals -= 1;
            }
        }

        // Global padding.
        while self.q.ag > 0 {
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let (m, v) = {
                let (m, chain, _, _) = &self.pad_sites[i];
                (*m, chain[0])
            };
            let g = self.pick_global();
            let before = self.b.num_edges();
            self.b.add_assign(v, g).unwrap();
            if self.b.num_edges() == before {
                let name = self.fresh("padg");
                let t = self.b.add_local(&name, m, None).unwrap();
                self.b.add_assign(g, t).unwrap();
                self.q.locals -= 1;
            }
            self.q.ag -= 1;
        }
    }
}

impl Gen<'_> {
    /// Final correction pass: the profile's *locality* (fraction of
    /// local edges) is the headline Table 3 metric, so after quota
    /// padding we top up precision-neutral local edges until the
    /// generated graph matches it.
    fn pad_locality(&mut self, target: f64) {
        if self.pad_sites.is_empty() || !(0.0..1.0).contains(&target) {
            return;
        }
        let stats = self.b.clone().finish().stats();
        let global = stats.global_edges() as f64;
        let local = stats.local_edges() as f64;
        let wanted_local = target / (1.0 - target) * global;
        let mut deficit = (wanted_local - local).ceil() as i64;

        // Phase 1: intra-chain links (no points-to change, no new nodes).
        let mut tries = 0usize;
        let max_tries = (deficit.max(0) as usize) * 6;
        while deficit > 0 && tries < max_tries {
            tries += 1;
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let chain = &self.pad_sites[i].1;
            if chain.len() < 2 {
                continue;
            }
            let a = chain[self.rng.gen_range(0..chain.len())];
            let d = chain[self.rng.gen_range(0..chain.len())];
            if a == d {
                continue;
            }
            let before = self.b.num_edges();
            self.b.add_assign(a, d).unwrap();
            if self.b.num_edges() > before {
                deficit -= 1;
            }
        }
        // Phase 2: fresh dead-end chains hanging off existing variables.
        while deficit > 0 {
            let i = self.rng.gen_range(0..self.pad_sites.len());
            let (m, src) = {
                let (m, chain, _, _) = &self.pad_sites[i];
                (*m, chain[chain.len() - 1])
            };
            let mut prev = src;
            let burst = deficit.min(8);
            for _ in 0..burst {
                let name = self.fresh("loc");
                let v = self.b.add_local(&name, m, None).unwrap();
                self.b.add_assign(prev, v).unwrap();
                prev = v;
                deficit -= 1;
            }
        }
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::PROFILES;

    fn small_opts() -> GeneratorOptions {
        GeneratorOptions {
            scale: 0.01,
            seed: 7,
            ..GeneratorOptions::default()
        }
    }

    #[test]
    fn generates_valid_pags_for_all_profiles() {
        for p in &PROFILES {
            let w = generate(p, &small_opts());
            assert!(
                dynsum_pag::validate(&w.pag).is_empty(),
                "{} generated an invalid PAG",
                p.name
            );
            assert!(w.pag.num_edges() > 0);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let p = &PROFILES[2];
        let a = generate(p, &small_opts());
        let b = generate(p, &small_opts());
        assert_eq!(a.pag.num_edges(), b.pag.num_edges());
        assert_eq!(a.pag.num_vars(), b.pag.num_vars());
        assert_eq!(
            dynsum_pag::text::write_pag(&a.pag),
            dynsum_pag::text::write_pag(&b.pag)
        );
        let c = generate(
            p,
            &GeneratorOptions {
                seed: 8,
                ..small_opts()
            },
        );
        assert_ne!(
            dynsum_pag::text::write_pag(&a.pag),
            dynsum_pag::text::write_pag(&c.pag)
        );
    }

    #[test]
    fn locality_tracks_profile() {
        for p in &PROFILES {
            let w = generate(
                p,
                &GeneratorOptions {
                    scale: 0.02,
                    seed: 1,
                    ..GeneratorOptions::default()
                },
            );
            let got = w.pag.stats().locality();
            let want = p.locality();
            assert!(
                (got - want).abs() < 0.02,
                "{}: generated locality {:.3} vs profile {:.3}",
                p.name,
                got,
                want
            );
        }
    }

    #[test]
    fn edge_ratios_track_profile() {
        let p = &PROFILES[0]; // jack
        let w = generate(
            p,
            &GeneratorOptions {
                scale: 0.05,
                seed: 3,
                ..GeneratorOptions::default()
            },
        );
        let s = w.pag.stats();
        let ratio = |a: usize, b: u64| a as f64 / ((b as f64) * 0.05);
        // Within 2x on every class of edge (the generator prioritizes
        // structure over exact counts).
        for (got, want, name) in [
            (s.assign_edges, p.assign, "assign"),
            (s.load_edges, p.load, "load"),
            (s.store_edges, p.store, "store"),
            (s.entry_edges, p.entry, "entry"),
            (s.exit_edges, p.exit, "exit"),
        ] {
            let r = ratio(got, want);
            assert!(
                (0.5..2.5).contains(&r),
                "{name}: got {got}, scaled target {}, ratio {r:.2}",
                (want as f64 * 0.05) as u64
            );
        }
    }

    #[test]
    fn query_sites_meet_minimums() {
        let p = &PROFILES[8]; // xalan: most queries
        let w = generate(p, &small_opts());
        assert!(w.info.casts.len() >= 8);
        assert!(w.info.derefs.len() >= 12);
        assert!(w.info.factories.len() >= 6);
    }

    #[test]
    fn plants_null_objects_and_recursive_sites() {
        let p = &PROFILES[3];
        let w = generate(
            p,
            &GeneratorOptions {
                scale: 0.05,
                seed: 2,
                ..GeneratorOptions::default()
            },
        );
        assert!(w.pag.objs().any(|(_, o)| o.is_null));
        assert!(w.pag.call_sites().any(|(_, s)| s.recursive));
    }

    #[test]
    fn scale_zero_yields_valid_pag_with_sites_for_every_profile() {
        for p in &PROFILES {
            let w = try_generate(
                p,
                &GeneratorOptions {
                    scale: 0.0,
                    seed: 5,
                    ..GeneratorOptions::default()
                },
            )
            .expect("scale 0 is a legal degenerate input");
            assert!(
                dynsum_pag::validate(&w.pag).is_empty(),
                "{}: scale-0 PAG invalid",
                p.name
            );
            assert!(!w.info.casts.is_empty(), "{}: empty cast sites", p.name);
            assert!(!w.info.derefs.is_empty(), "{}: empty deref sites", p.name);
            assert!(
                !w.info.factories.is_empty(),
                "{}: empty factory sites",
                p.name
            );
        }
    }

    #[test]
    fn adversarial_options_are_typed_errors_not_panics() {
        let p = &PROFILES[0];
        let bad = |opts: GeneratorOptions| try_generate(p, &opts).unwrap_err();
        assert!(matches!(
            bad(GeneratorOptions {
                scale: f64::NAN,
                ..GeneratorOptions::default()
            }),
            GeneratorError::ScaleNotFinite { .. }
        ));
        assert!(matches!(
            bad(GeneratorOptions {
                scale: f64::INFINITY,
                ..GeneratorOptions::default()
            }),
            GeneratorError::ScaleNotFinite { .. }
        ));
        assert!(matches!(
            bad(GeneratorOptions {
                scale: -0.5,
                ..GeneratorOptions::default()
            }),
            GeneratorError::ScaleOutOfRange { .. }
        ));
        assert!(matches!(
            bad(GeneratorOptions {
                scale: 1.0e9,
                ..GeneratorOptions::default()
            }),
            GeneratorError::ScaleOutOfRange { .. }
        ));
        assert!(matches!(
            bad(GeneratorOptions {
                recursion_bias: 1.5,
                ..GeneratorOptions::default()
            }),
            GeneratorError::BiasOutOfRange {
                knob: "recursion_bias",
                ..
            }
        ));
        assert!(matches!(
            bad(GeneratorOptions {
                null_bias: f64::NAN,
                ..GeneratorOptions::default()
            }),
            GeneratorError::BiasOutOfRange {
                knob: "null_bias",
                ..
            }
        ));
        assert!(matches!(
            bad(GeneratorOptions {
                field_chain: MAX_FIELD_CHAIN + 1,
                ..GeneratorOptions::default()
            }),
            GeneratorError::FieldChainTooDeep { .. }
        ));
        // Errors carry a human-readable rendering.
        let msg = bad(GeneratorOptions {
            scale: -1.0,
            ..GeneratorOptions::default()
        })
        .to_string();
        assert!(msg.contains("scale"), "unhelpful error: {msg}");
    }

    #[test]
    fn adversarial_knobs_produce_valid_pags() {
        let p = &PROFILES[1];
        let opts = GeneratorOptions {
            scale: 0.01,
            seed: 11,
            recursion_bias: 0.9,
            field_chain: 24,
            null_bias: 0.9,
        };
        let w = try_generate(p, &opts).unwrap();
        assert!(dynsum_pag::validate(&w.pag).is_empty());
        // The knobs visibly changed the graph's character.
        let recursive = w.pag.call_sites().filter(|(_, s)| s.recursive).count();
        let baseline = generate(
            p,
            &GeneratorOptions {
                scale: 0.01,
                seed: 11,
                ..GeneratorOptions::default()
            },
        );
        let base_recursive = baseline
            .pag
            .call_sites()
            .filter(|(_, s)| s.recursive)
            .count();
        assert!(
            recursive > base_recursive,
            "recursion_bias planted nothing ({recursive} vs {base_recursive})"
        );
        assert!(
            w.info.derefs.iter().any(|d| d.location.ends_with(":chain")),
            "field_chain planted no chain deref sites"
        );
    }

    #[test]
    fn default_knobs_reproduce_historical_output() {
        // The widened options must not disturb same-seed determinism:
        // explicitly spelling out the historical defaults matches
        // `..Default::default()` byte for byte.
        let p = &PROFILES[4];
        let a = generate(p, &small_opts());
        let b = generate(
            p,
            &GeneratorOptions {
                scale: 0.01,
                seed: 7,
                recursion_bias: 0.0,
                field_chain: 0,
                null_bias: 0.12,
            },
        );
        assert_eq!(
            dynsum_pag::text::write_pag(&a.pag),
            dynsum_pag::text::write_pag(&b.pag)
        );
        assert_eq!(a.info, b.info);
    }
}
