//! Auto-reduction of divergent workloads.
//!
//! When the fuzzer ([`fuzz`](crate::fuzz)) finds a divergence, the raw
//! workload is thousands of nodes — useless as a regression test. This
//! module shrinks it wgslsmith-style: greedily delete program elements,
//! re-check the divergence predicate after each candidate deletion, and
//! keep only deletions that preserve it.
//!
//! Reduction operates on the [`wire`](crate::wire) text, which is
//! line-oriented with every cross-reference by name: deleting a line
//! plus the transitive closure of lines that (directly or indirectly)
//! reference any name it defines always yields a parseable candidate —
//! and [`parse_workload`] re-validates
//! everything anyway, so an over-aggressive cascade is rejected, never
//! miscompiled. Candidates are tried in a seeded order, coarse
//! granularity first (method declarations cascade whole call trees;
//! single edges come last), so the loop is:
//!
//! * **deterministic** in `(workload, seed)` — same input, same
//!   reproducer;
//! * **terminating** — every committed deletion strictly shrinks the
//!   line count, and a full pass with no commit ends the loop;
//! * **predicate-preserving** — the reduced workload still exhibits
//!   the divergence, by construction.
//!
//! All three properties are property-tested in
//! `crates/workloads/tests/reducer_convergence.rs`.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::generator::Workload;
use crate::wire::{parse_workload, write_workload};

/// Reduction tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReduceOptions {
    /// Orders candidate deletions within each granularity tier. The
    /// *outcome* is deterministic in `(workload, seed)`.
    pub seed: u64,
    /// Safety cap on full passes (each pass re-tries every surviving
    /// candidate); the loop normally stops earlier, at the first pass
    /// that commits nothing.
    pub max_passes: usize,
    /// Cap on predicate evaluations, bounding worst-case wall clock.
    /// Hitting the cap stops reduction early with the best result so
    /// far (still predicate-preserving).
    pub max_evals: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            seed: 0x5EED,
            max_passes: 8,
            max_evals: 100_000,
        }
    }
}

/// Result of a reduction run.
#[derive(Debug, Clone)]
pub struct ReduceOutcome {
    /// The reduced workload (equal to the input if nothing could go).
    pub workload: Workload,
    /// Its wire-format text (what the corpus checks in).
    pub text: String,
    /// Line count before reduction.
    pub initial_lines: usize,
    /// Line count after.
    pub final_lines: usize,
    /// Committed deletions (line-closure steps, not line count).
    pub deletions: usize,
    /// Predicate evaluations spent.
    pub predicate_evals: usize,
}

/// Granularity tiers, coarse → fine. A tier's candidates are the lines
/// whose first token matches; deleting one removes its whole reference
/// closure.
const TIERS: &[&[&str]] = &[
    &["method"],
    &["class"],
    &["callsite"],
    &["obj", "nullobj"],
    &["global", "local"],
    &["field"],
    &["new", "assign", "load", "store", "entry", "exit"],
    &["site", "entrypoint"],
];

/// One parsed line: which names it defines and which it references.
struct LineRefs {
    /// Name introduced by a declaration line (`None` for edges/sites).
    defines: Option<String>,
    /// Names this line mentions (cascade triggers).
    refs: Vec<String>,
}

/// Marker keywords that *precede* a referenced name inside declaration
/// lines (`class N extends S`, `local N method M type C`, …).
const REF_MARKERS: &[&str] = &["extends", "class", "method", "type"];

fn classify(line: &str) -> Option<LineRefs> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let &kw = toks.first()?;
    match kw {
        // Headers and comments are never candidates and reference
        // nothing.
        "workload" | "pag" => None,
        _ if kw.starts_with('#') => None,
        "class" | "field" | "method" | "global" | "local" | "obj" | "nullobj" | "callsite" => {
            let defines = toks.get(1).map(|s| s.to_string());
            let mut refs = Vec::new();
            let mut i = 2;
            while i + 1 < toks.len() {
                if REF_MARKERS.contains(&toks[i]) {
                    refs.push(toks[i + 1].to_string());
                    i += 2;
                } else {
                    // `recursive` flag etc.
                    i += 1;
                }
            }
            Some(LineRefs { defines, refs })
        }
        "new" | "assign" | "load" | "store" | "entry" | "exit" => Some(LineRefs {
            defines: None,
            refs: toks[1..].iter().map(|s| s.to_string()).collect(),
        }),
        "entrypoint" => Some(LineRefs {
            defines: None,
            refs: toks[1..].iter().map(|s| s.to_string()).collect(),
        }),
        "site" => {
            // `site cast v c loc...` / `site deref v loc...` /
            // `site factory m r` — the trailing location tokens are not
            // names, but treating them as references is harmless: a
            // location never collides with a generated name, and a
            // false cascade is just a rejected candidate.
            let refs = match toks.get(1) {
                Some(&"cast") => toks[2..toks.len().min(4)].to_vec(),
                Some(&"deref") => toks[2..toks.len().min(3)].to_vec(),
                Some(&"factory") => toks[2..].to_vec(),
                _ => toks[1..].to_vec(),
            };
            Some(LineRefs {
                defines: None,
                refs: refs.iter().map(|s| s.to_string()).collect(),
            })
        }
        _ => Some(LineRefs {
            defines: None,
            refs: toks[1..].iter().map(|s| s.to_string()).collect(),
        }),
    }
}

/// Deletes line `root` from `lines` together with every line reachable
/// through name references. Returns the surviving lines.
fn delete_closure(lines: &[String], root: usize) -> Vec<String> {
    let parsed: Vec<Option<LineRefs>> = lines.iter().map(|l| classify(l)).collect();
    let mut removed = vec![false; lines.len()];
    removed[root] = true;
    let mut dead_names: Vec<String> = parsed[root]
        .as_ref()
        .and_then(|p| p.defines.clone())
        .into_iter()
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (i, p) in parsed.iter().enumerate() {
            if removed[i] {
                continue;
            }
            let Some(p) = p else { continue };
            if p.refs.iter().any(|r| dead_names.contains(r)) {
                removed[i] = true;
                changed = true;
                if let Some(d) = &p.defines {
                    if !dead_names.contains(d) {
                        dead_names.push(d.clone());
                    }
                }
            }
        }
    }
    lines
        .iter()
        .zip(&removed)
        .filter(|(_, &r)| !r)
        .map(|(l, _)| l.clone())
        .collect()
}

/// Shrinks `w` while `predicate` keeps returning `true`.
///
/// The input must satisfy the predicate; if it does not, the input is
/// returned unchanged (zero deletions) — the caller's divergence was
/// not reproducible, which the caller should treat as its own finding.
pub fn reduce(
    w: &Workload,
    opts: &ReduceOptions,
    mut predicate: impl FnMut(&Workload) -> bool,
) -> ReduceOutcome {
    let mut text = write_workload(w);
    let mut lines: Vec<String> = text.lines().map(|l| l.to_owned()).collect();
    let initial_lines = lines.len();
    let mut best = w.clone();
    let mut deletions = 0usize;
    let mut evals = 0usize;
    let mut rng = SmallRng::seed_from_u64(opts.seed);

    evals += 1;
    if !predicate(w) {
        return ReduceOutcome {
            workload: best,
            text,
            initial_lines,
            final_lines: initial_lines,
            deletions: 0,
            predicate_evals: evals,
        };
    }

    'outer: for _pass in 0..opts.max_passes {
        let mut committed = false;
        for tier in TIERS {
            // Candidate roots of this tier, in a seeded order. Indices
            // are recomputed after every commit (the line set changed).
            loop {
                let mut roots: Vec<usize> = lines
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| {
                        l.split_whitespace()
                            .next()
                            .is_some_and(|t| tier.contains(&t))
                    })
                    .map(|(i, _)| i)
                    .collect();
                roots.shuffle(&mut rng);
                let mut tier_committed = false;
                for root in roots {
                    let candidate = delete_closure(&lines, root);
                    if candidate.len() >= lines.len() {
                        continue;
                    }
                    let Ok(cw) = parse_workload(&(candidate.join("\n") + "\n")) else {
                        continue;
                    };
                    if evals >= opts.max_evals {
                        break 'outer;
                    }
                    evals += 1;
                    if predicate(&cw) {
                        lines = candidate;
                        best = cw;
                        deletions += 1;
                        committed = true;
                        tier_committed = true;
                        // Restart the tier on the shrunk line set.
                        break;
                    }
                }
                if !tier_committed {
                    break;
                }
            }
        }
        if !committed {
            break;
        }
    }

    text = lines.join("\n") + "\n";
    ReduceOutcome {
        final_lines: lines.len(),
        workload: best,
        text,
        initial_lines,
        deletions,
        predicate_evals: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorOptions};
    use crate::profiles::PROFILES;

    fn tiny() -> Workload {
        generate(
            &PROFILES[0],
            &GeneratorOptions {
                scale: 0.0,
                seed: 9,
                ..GeneratorOptions::default()
            },
        )
    }

    #[test]
    fn reduces_while_preserving_a_cheap_predicate() {
        let w = tiny();
        // Predicate: the workload still has a null object and at least
        // one deref site (the skeleton of a NullDeref repro).
        let pred = |w: &Workload| w.pag.objs().any(|(_, o)| o.is_null) && !w.info.derefs.is_empty();
        let out = reduce(&w, &ReduceOptions::default(), pred);
        assert!(pred(&out.workload), "predicate lost in reduction");
        assert!(
            out.final_lines < out.initial_lines / 2,
            "barely reduced: {} -> {}",
            out.initial_lines,
            out.final_lines
        );
        // The emitted text round-trips.
        let back = parse_workload(&out.text).unwrap();
        assert!(pred(&back));
    }

    #[test]
    fn unreproducible_input_is_returned_unchanged() {
        let w = tiny();
        let out = reduce(&w, &ReduceOptions::default(), |_| false);
        assert_eq!(out.deletions, 0);
        assert_eq!(out.initial_lines, out.final_lines);
        assert_eq!(out.predicate_evals, 1);
    }

    #[test]
    fn eval_cap_bounds_work() {
        let w = tiny();
        let opts = ReduceOptions {
            max_evals: 5,
            ..ReduceOptions::default()
        };
        let mut calls = 0usize;
        let out = reduce(&w, &opts, |_| {
            calls += 1;
            true
        });
        assert!(out.predicate_evals <= 5);
        assert_eq!(calls, out.predicate_evals);
    }
}
