//! The nine benchmark profiles of Table 3.
//!
//! The paper evaluates on nine Java programs from SPECjvm98 and DaCapo,
//! characterizing each by its PAG shape: node counts (`O`/`V`/`G`),
//! per-kind edge counts, the **locality** metric (fraction of local
//! edges — 80–90% across the suite), and the number of queries each
//! client issues. Those shape statistics are reproduced here verbatim
//! from Table 3 and drive the synthetic generator.
//!
//! One reading note: the table's `new` column equals `O` (each object
//! has one allocation), and the paper's method counts are not fully
//! recoverable from the published table — the generator derives a
//! method count from `V` assuming ~20 locals per method (a typical
//! Spark PAG density). The locality metric, which is what the
//! experiments depend on, is determined entirely by the edge columns
//! and matches the paper's percentages exactly (see the unit tests).

/// The PAG shape of one paper benchmark (counts in units, not
/// thousands; queries as issued by each client).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name as in Table 3.
    pub name: &'static str,
    /// Global variables (`G`).
    pub globals: u64,
    /// Abstract objects (`O`, equal to `new` edges).
    pub objs: u64,
    /// Local variables (`V`).
    pub locals: u64,
    /// `assign` edges.
    pub assign: u64,
    /// `load(f)` edges.
    pub load: u64,
    /// `store(f)` edges.
    pub store: u64,
    /// `entry_i` edges.
    pub entry: u64,
    /// `exit_i` edges.
    pub exit: u64,
    /// `assignglobal` edges.
    pub assignglobal: u64,
    /// SafeCast queries.
    pub q_safecast: u64,
    /// NullDeref queries.
    pub q_nullderef: u64,
    /// FactoryM queries.
    pub q_factory: u64,
    /// Locality as printed in Table 3 (percent).
    pub paper_locality_pct: f64,
}

impl BenchmarkProfile {
    /// Locality recomputed from the edge columns:
    /// `(new + assign + load + store) / total`.
    pub fn locality(&self) -> f64 {
        let local = (self.objs + self.assign + self.load + self.store) as f64;
        let global = (self.entry + self.exit + self.assignglobal) as f64;
        local / (local + global)
    }

    /// Derived method count (~20 locals per method, Spark-like density).
    pub fn methods(&self) -> u64 {
        (self.locals / 20).max(1)
    }

    /// Finds a profile by name.
    pub fn find(name: &str) -> Option<&'static BenchmarkProfile> {
        PROFILES.iter().find(|p| p.name == name)
    }
}

macro_rules! profile {
    ($name:literal, g=$g:expr, o=$o:expr, v=$v:expr, assign=$a:expr, load=$l:expr,
     store=$s:expr, entry=$en:expr, exit=$ex:expr, ag=$ag:expr,
     q=($q1:expr, $q2:expr, $q3:expr), loc=$loc:expr) => {
        BenchmarkProfile {
            name: $name,
            globals: ($g * 1000.0) as u64,
            objs: ($o * 1000.0) as u64,
            locals: ($v * 1000.0) as u64,
            assign: ($a * 1000.0) as u64,
            load: ($l * 1000.0) as u64,
            store: ($s * 1000.0) as u64,
            entry: ($en * 1000.0) as u64,
            exit: ($ex * 1000.0) as u64,
            assignglobal: ($ag * 1000.0) as u64,
            q_safecast: $q1,
            q_nullderef: $q2,
            q_factory: $q3,
            paper_locality_pct: $loc,
        }
    };
}

/// The nine benchmarks of Table 3, in the paper's order.
pub const PROFILES: [BenchmarkProfile; 9] = [
    profile!(
        "jack",
        g = 0.5,
        o = 16.6,
        v = 207.9,
        assign = 328.1,
        load = 25.1,
        store = 8.8,
        entry = 39.9,
        exit = 12.8,
        ag = 2.4,
        q = (134, 356, 127),
        loc = 87.3
    ),
    profile!(
        "javac",
        g = 1.1,
        o = 17.2,
        v = 216.1,
        assign = 367.4,
        load = 26.8,
        store = 9.1,
        entry = 42.4,
        exit = 13.3,
        ag = 0.5,
        q = (307, 2897, 231),
        loc = 88.2
    ),
    profile!(
        "soot-c",
        g = 3.4,
        o = 9.4,
        v = 104.8,
        assign = 195.1,
        load = 13.3,
        store = 4.2,
        entry = 19.3,
        exit = 6.4,
        ag = 0.7,
        q = (906, 2290, 619),
        loc = 89.4
    ),
    profile!(
        "bloat",
        g = 2.2,
        o = 10.3,
        v = 115.2,
        assign = 217.2,
        load = 14.5,
        store = 4.6,
        entry = 20.6,
        exit = 6.1,
        ag = 1.0,
        q = (1217, 3469, 613),
        loc = 89.9
    ),
    profile!(
        "jython",
        g = 3.2,
        o = 9.5,
        v = 109.0,
        assign = 168.4,
        load = 14.4,
        store = 4.2,
        entry = 19.5,
        exit = 7.1,
        ag = 1.3,
        q = (464, 3351, 214),
        loc = 87.6
    ),
    profile!(
        "avrora",
        g = 1.6,
        o = 4.5,
        v = 45.1,
        assign = 38.1,
        load = 6.0,
        store = 2.9,
        entry = 9.7,
        exit = 2.9,
        ag = 0.3,
        q = (1130, 4689, 334),
        loc = 80.0
    ),
    profile!(
        "batik",
        g = 2.3,
        o = 10.8,
        v = 118.1,
        assign = 119.7,
        load = 13.4,
        store = 5.3,
        entry = 24.8,
        exit = 7.8,
        ag = 0.6,
        q = (2748, 5738, 769),
        loc = 81.8
    ),
    profile!(
        "luindex",
        g = 1.0,
        o = 4.4,
        v = 48.2,
        assign = 42.6,
        load = 6.9,
        store = 2.3,
        entry = 9.1,
        exit = 3.0,
        ag = 0.5,
        q = (1666, 4899, 657),
        loc = 81.7
    ),
    profile!(
        "xalan",
        g = 2.5,
        o = 6.6,
        v = 75.8,
        assign = 76.4,
        load = 14.1,
        store = 4.4,
        entry = 15.7,
        exit = 4.0,
        ag = 0.2,
        q = (4090, 10872, 1290),
        loc = 83.6
    ),
];

/// The three benchmarks selected for the scalability studies (Figures 4
/// and 5): large code bases with many queries (§5.3).
pub const SCALABILITY_BENCHMARKS: [&str; 3] = ["soot-c", "bloat", "jython"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_matches_the_paper_exactly() {
        for p in &PROFILES {
            let got = p.locality() * 100.0;
            assert!(
                (got - p.paper_locality_pct).abs() < 0.05,
                "{}: computed {:.2}% vs paper {:.1}%",
                p.name,
                got,
                p.paper_locality_pct
            );
        }
    }

    #[test]
    fn all_nine_present_in_order() {
        let names: Vec<_> = PROFILES.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "jack", "javac", "soot-c", "bloat", "jython", "avrora", "batik", "luindex", "xalan"
            ]
        );
    }

    #[test]
    fn find_by_name() {
        assert_eq!(BenchmarkProfile::find("xalan").unwrap().q_nullderef, 10872);
        assert!(BenchmarkProfile::find("nope").is_none());
    }

    #[test]
    fn majority_of_edges_are_local_everywhere() {
        for p in &PROFILES {
            assert!(p.locality() > 0.79, "{}", p.name);
        }
    }

    #[test]
    fn derived_method_counts_are_sane() {
        for p in &PROFILES {
            let m = p.methods();
            assert!(m > 100, "{}: {m}", p.name);
            assert!(m < p.locals, "{}", p.name);
        }
    }
}
