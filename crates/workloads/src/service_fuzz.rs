//! Differential fuzzing of the analysis daemon.
//!
//! The `service` regime generates a workload, derives a random
//! multi-client script — interleaved queries, batches, cancels and
//! method invalidations from 2–3 clients multiplexed onto shared
//! sessions — and feeds it to a [`Daemon`] twice. The judge then holds
//! the daemon to three promises:
//!
//! 1. **Byte-identity** — every *answered* query (resolved or
//!    over-budget) must carry the exact fingerprint a clean,
//!    single-client [`Session`] of the same engine computes for that
//!    variable. Multiplexing, shared caches, scheduling order,
//!    invalidations: none of it may change an answer.
//! 2. **Protocol discipline** — every script frame gets exactly one
//!    response, none of them an error (the script is well-formed), and
//!    a `cancelled` outcome only ever appears on a request the script
//!    actually cancelled; `panicked`/`deadline-exceeded` never appear
//!    (the script injects neither).
//! 3. **Replay determinism** — the same script against a fresh daemon
//!    produces a byte-identical response stream. The daemon core is a
//!    deterministic state machine; this is the check that keeps it one.
//!
//! Like the engine fuzzer, the pipeline splits into an effectful
//! [`observe_service`] and a pure [`judge_service`], so mutation tests
//! can corrupt an observation and prove the judge catches it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dynsum_cfl::Outcome;
use dynsum_core::{EngineConfig, EngineKind, Session};
use dynsum_pag::VarId;
use dynsum_service::json::{parse, Json};
use dynsum_service::{Daemon, ServedWorkload, ServiceConfig};

use crate::fuzz::query_vars;
use crate::generator::Workload;

/// One event of a generated client script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptEvent {
    /// Ingest one frame line from the given client slot.
    Frame(usize, String),
    /// Run the scheduler for the given number of turns.
    Step(usize),
}

/// A deterministic multi-client interaction script.
#[derive(Debug, Clone)]
pub struct ServiceScript {
    /// Engine negotiated by each client slot.
    pub engines: Vec<EngineKind>,
    /// The interleaved event stream.
    pub events: Vec<ScriptEvent>,
    /// `(slot, request id)` → variables queried, in slot order.
    pub requests: BTreeMap<(usize, u64), Vec<VarId>>,
    /// `(slot, request id)` pairs targeted by a cancel frame.
    pub cancelled: BTreeSet<(usize, u64)>,
    /// Total frames sent — each one owes exactly one response.
    pub frames: usize,
}

/// SplitMix64 step — the script generator's whole RNG.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the deterministic interaction script for one fuzz case.
/// Public so a reproducer can replay the exact interleaving.
pub fn generate_script(seed: u64, vars: &[VarId], num_methods: usize) -> ServiceScript {
    let mut rng = seed ^ 0x5E2F_1CE0_5E2F_1CE0;
    let clients = 2 + (mix(&mut rng) % 2) as usize;
    let mut engines = Vec::with_capacity(clients);
    let mut per_client: Vec<VecDeque<String>> = Vec::with_capacity(clients);
    let mut requests = BTreeMap::new();
    let mut cancelled = BTreeSet::new();

    for slot in 0..clients {
        // DYNSUM-heavy engine rotation: shared-cache multiplexing is
        // where the risk lives, but cross-engine sessions must coexist.
        let engine = match mix(&mut rng) % 4 {
            0 | 1 => EngineKind::DynSum,
            2 => EngineKind::NoRefine,
            _ => EngineKind::RefinePts,
        };
        engines.push(engine);
        let engine_name = match engine {
            EngineKind::DynSum => "dynsum",
            EngineKind::NoRefine => "norefine",
            EngineKind::RefinePts => "refinepts",
            EngineKind::StaSum => "stasum",
        };
        let mut frames = VecDeque::new();
        frames.push_back(format!(
            r#"{{"op":"hello","id":1,"name":"c{slot}","engine":"{engine_name}"}}"#
        ));
        let mut issued: Vec<u64> = Vec::new();
        let ops = 6 + (mix(&mut rng) % 4);
        for next_id in 2..2 + ops {
            let mut roll = mix(&mut rng) % 8;
            if roll == 6 && issued.is_empty() {
                roll = 0; // nothing to cancel yet
            }
            if roll == 7 && num_methods == 0 {
                roll = 0;
            }
            match roll {
                6 => {
                    let target = issued[(mix(&mut rng) as usize) % issued.len()];
                    frames.push_back(format!(
                        r#"{{"op":"cancel","id":{next_id},"target":{target}}}"#
                    ));
                    cancelled.insert((slot, target));
                }
                7 => {
                    let method = mix(&mut rng) % num_methods as u64;
                    frames.push_back(format!(
                        r#"{{"op":"invalidate_method","id":{next_id},"method":{method}}}"#
                    ));
                }
                4 | 5 => {
                    let n = 2 + (mix(&mut rng) % 4) as usize;
                    let batch: Vec<VarId> = (0..n)
                        .map(|_| vars[(mix(&mut rng) as usize) % vars.len()])
                        .collect();
                    let raw: Vec<String> = batch.iter().map(|v| v.as_raw().to_string()).collect();
                    frames.push_back(format!(
                        r#"{{"op":"batch","id":{next_id},"vars":[{}]}}"#,
                        raw.join(",")
                    ));
                    requests.insert((slot, next_id), batch);
                    issued.push(next_id);
                }
                _ => {
                    let var = vars[(mix(&mut rng) as usize) % vars.len()];
                    frames.push_back(format!(
                        r#"{{"op":"query","id":{next_id},"var":{}}}"#,
                        var.as_raw()
                    ));
                    requests.insert((slot, next_id), vec![var]);
                    issued.push(next_id);
                }
            }
        }
        per_client.push(frames);
    }

    // Interleave the client streams, with scheduler turns woven in so
    // cancels land against queued, running and completed requests alike.
    let mut events = Vec::new();
    let mut frames = 0usize;
    while per_client.iter().any(|q| !q.is_empty()) {
        let pick = (mix(&mut rng) as usize) % clients;
        let slot = (0..clients)
            .map(|i| (pick + i) % clients)
            .find(|&i| !per_client[i].is_empty())
            .expect("some client has frames left");
        let frame = per_client[slot].pop_front().expect("non-empty");
        events.push(ScriptEvent::Frame(slot, frame));
        frames += 1;
        if mix(&mut rng) % 4 == 0 {
            events.push(ScriptEvent::Step(1 + (mix(&mut rng) % 3) as usize));
        }
    }

    ServiceScript {
        engines,
        events,
        requests,
        cancelled,
        frames,
    }
}

/// One answered query extracted from the response stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceAnswer {
    /// Client slot the answer belongs to.
    pub slot: usize,
    /// Request id.
    pub request: u64,
    /// The queried variable.
    pub var: VarId,
    /// [`Outcome::tag`] decoded from the wire outcome string.
    pub outcome_tag: u8,
    /// Wire fingerprint, decoded from hex.
    pub fingerprint: u64,
}

/// Everything observed about one daemon script run, ready for
/// [`judge_service`].
#[derive(Debug, Clone)]
pub struct ServiceObservation {
    /// Frames the script sent.
    pub script_frames: usize,
    /// Response frames received (acks, answers and errors).
    pub responses: usize,
    /// Error codes received — a well-formed script expects none.
    pub unexpected_errors: Vec<String>,
    /// Every answered query.
    pub answers: Vec<ServiceAnswer>,
    /// `(slot, request id)` pairs the script cancelled.
    pub cancelled: BTreeSet<(usize, u64)>,
    /// Per-slot clean single-client reference: variable → fingerprint.
    pub reference: Vec<BTreeMap<VarId, u64>>,
    /// Did a second run of the same script produce a byte-identical
    /// response stream?
    pub replay_identical: bool,
}

/// Executes `script` against a fresh daemon over `w`, returning the
/// full response stream in arrival order.
fn run_script(w: &Workload, config: &EngineConfig, script: &ServiceScript) -> Vec<(u64, String)> {
    let mut daemon = Daemon::new(
        vec![ServedWorkload {
            name: &w.name,
            pag: &w.pag,
        }],
        ServiceConfig {
            engine_config: *config,
            ..ServiceConfig::default()
        },
    );
    let ids: Vec<u64> = (0..script.engines.len())
        .map(|_| daemon.connect())
        .collect();
    let mut stream = Vec::new();
    for event in &script.events {
        match event {
            ScriptEvent::Frame(slot, line) => {
                for frame in daemon.ingest(ids[*slot], line) {
                    stream.push((ids[*slot], frame));
                }
            }
            ScriptEvent::Step(turns) => {
                for _ in 0..*turns {
                    stream.extend(daemon.step());
                }
            }
        }
    }
    stream.extend(daemon.drain());
    stream
}

fn outcome_tag(name: &str) -> Option<u8> {
    Some(match name {
        "over-budget" => Outcome::OverBudget.tag(),
        "resolved" => Outcome::Resolved.tag(),
        "cancelled" => Outcome::Cancelled.tag(),
        "deadline-exceeded" => Outcome::DeadlineExceeded.tag(),
        "panicked" => Outcome::Panicked.tag(),
        _ => return None,
    })
}

fn answers_from(result: &Json, slot: usize, request: u64, vars: &[VarId]) -> Vec<ServiceAnswer> {
    let one = |var: VarId, r: &Json| -> ServiceAnswer {
        let outcome = r
            .get("outcome")
            .and_then(Json::as_str)
            .and_then(outcome_tag)
            .expect("wire outcome is one of the five tags");
        let fingerprint = r
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .expect("wire fingerprint is 16 hex digits");
        ServiceAnswer {
            slot,
            request,
            var,
            outcome_tag: outcome,
            fingerprint,
        }
    };
    match result.get("results").and_then(Json::as_arr) {
        Some(items) => items.iter().zip(vars).map(|(r, &v)| one(v, r)).collect(),
        None => vec![one(
            vars[0],
            result.get("result").expect("single query result"),
        )],
    }
}

/// Runs the `service` regime for one fuzz case: derives the script,
/// replays it twice, decodes the answers and computes the clean
/// single-client references.
pub fn observe_service(w: &Workload, config: &EngineConfig, seed: u64) -> ServiceObservation {
    let vars: Vec<VarId> = query_vars(w).into_iter().map(|(v, _)| v).collect();
    if vars.is_empty() {
        return ServiceObservation {
            script_frames: 0,
            responses: 0,
            unexpected_errors: Vec::new(),
            answers: Vec::new(),
            cancelled: BTreeSet::new(),
            reference: Vec::new(),
            replay_identical: true,
        };
    }
    let script = generate_script(seed, &vars, w.pag.num_methods());
    let stream = run_script(w, config, &script);
    let replay = run_script(w, config, &script);
    let replay_identical = stream == replay;

    let mut unexpected_errors = Vec::new();
    let mut answers = Vec::new();
    for (cid, frame) in &stream {
        let value = parse(frame).expect("daemon emits valid JSON");
        let slot = (*cid - 1) as usize;
        if value.get("ok").and_then(Json::as_bool) != Some(true) {
            let code = value
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str)
                .unwrap_or("missing-code");
            unexpected_errors.push(code.to_owned());
            continue;
        }
        if value.get("result").is_none() && value.get("results").is_none() {
            continue; // hello/cancel/invalidate acks carry no answers
        }
        let request = value
            .get("id")
            .and_then(Json::as_u64)
            .expect("responses echo the request id");
        let vars = script
            .requests
            .get(&(slot, request))
            .expect("answers only for issued requests");
        answers.extend(answers_from(&value, slot, request, vars));
    }

    // The clean single-client reference every answered query must match:
    // one fresh session per slot, same engine, same config.
    let reference: Vec<BTreeMap<VarId, u64>> = script
        .engines
        .iter()
        .enumerate()
        .map(|(slot, &engine)| {
            let mut wanted: Vec<VarId> = script
                .requests
                .iter()
                .filter(|((s, _), _)| *s == slot)
                .flat_map(|(_, vs)| vs.iter().copied())
                .collect();
            wanted.sort_unstable();
            wanted.dedup();
            let mut session = Session::with_config(&w.pag, engine, forced(config));
            let results = session.run_batch_vars(&wanted, 1);
            wanted
                .iter()
                .zip(&results)
                .map(|(&v, r)| (v, r.fingerprint()))
                .collect()
        })
        .collect();

    ServiceObservation {
        script_frames: script.frames,
        responses: stream.len(),
        unexpected_errors,
        answers,
        cancelled: script.cancelled,
        reference,
        replay_identical,
    }
}

/// The daemon forces deterministic reuse on shared sessions; the
/// reference must run under the identical semantics.
fn forced(config: &EngineConfig) -> EngineConfig {
    EngineConfig {
        deterministic_reuse: true,
        ..*config
    }
}

/// A service-regime invariant violation. [`judge`](crate::fuzz::judge)
/// folds these into the fuzz run's divergence list under
/// [`DivergenceKind::Service`](crate::fuzz::DivergenceKind::Service).
#[derive(Debug, Clone)]
pub struct ServiceDivergence {
    /// The variable involved, when attributable to one.
    pub var: Option<VarId>,
    /// Human-readable specifics.
    pub detail: String,
}

/// Folds a [`ServiceObservation`] into divergences. Pure — mutation
/// tests corrupt the observation and assert detection.
pub fn judge_service(obs: &ServiceObservation) -> Vec<ServiceDivergence> {
    let mut out = Vec::new();
    if !obs.replay_identical {
        out.push(ServiceDivergence {
            var: None,
            detail: "replaying the identical script produced a different response stream"
                .to_owned(),
        });
    }
    if obs.responses != obs.script_frames {
        out.push(ServiceDivergence {
            var: None,
            detail: format!(
                "sent {} frames but received {} responses",
                obs.script_frames, obs.responses
            ),
        });
    }
    for code in &obs.unexpected_errors {
        out.push(ServiceDivergence {
            var: None,
            detail: format!("well-formed script frame answered with error `{code}`"),
        });
    }
    for a in &obs.answers {
        let tag = a.outcome_tag;
        if tag == Outcome::Resolved.tag() || tag == Outcome::OverBudget.tag() {
            let want = obs.reference[a.slot].get(&a.var).copied();
            if want != Some(a.fingerprint) {
                out.push(ServiceDivergence {
                    var: Some(a.var),
                    detail: format!(
                        "client {} request {} answered {:016x}, clean single-client \
                         reference is {:?}",
                        a.slot, a.request, a.fingerprint, want
                    ),
                });
            }
        } else if tag == Outcome::Cancelled.tag() {
            if !obs.cancelled.contains(&(a.slot, a.request)) {
                out.push(ServiceDivergence {
                    var: Some(a.var),
                    detail: format!(
                        "client {} request {} reported cancelled but the script never \
                         cancelled it",
                        a.slot, a.request
                    ),
                });
            }
        } else {
            out.push(ServiceDivergence {
                var: Some(a.var),
                detail: format!(
                    "client {} request {} reported outcome tag {tag} with no fault or \
                     deadline in the script",
                    a.slot, a.request
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorOptions};
    use crate::profiles::PROFILES;

    fn fixture() -> (Workload, EngineConfig) {
        let w = generate(
            &PROFILES[0],
            &GeneratorOptions {
                scale: 0.003,
                seed: 0x5EED,
                ..GeneratorOptions::default()
            },
        );
        let config = EngineConfig {
            budget: 20_000,
            ..EngineConfig::default()
        };
        (w, config)
    }

    fn clean_obs() -> ServiceObservation {
        let (w, config) = fixture();
        let obs = observe_service(&w, &config, 0xC0FFEE);
        assert!(
            judge_service(&obs).is_empty(),
            "service fixture must start clean: {:?}",
            judge_service(&obs)
        );
        obs
    }

    #[test]
    fn scripts_are_deterministic_and_multi_client() {
        let (w, _) = fixture();
        let vars: Vec<VarId> = query_vars(&w).into_iter().map(|(v, _)| v).collect();
        let a = generate_script(7, &vars, w.pag.num_methods());
        let b = generate_script(7, &vars, w.pag.num_methods());
        assert_eq!(a.events, b.events);
        assert_eq!(a.frames, b.frames);
        assert!(a.engines.len() >= 2, "at least two concurrent clients");
        assert!(a.requests.values().any(|vs| vs.len() > 1), "has a batch");
        let c = generate_script(8, &vars, w.pag.num_methods());
        assert_ne!(a.events, c.events, "seed changes the script");
    }

    #[test]
    fn observe_then_judge_is_clean_and_replay_identical() {
        let obs = clean_obs();
        assert!(obs.replay_identical);
        assert!(!obs.answers.is_empty());
        assert_eq!(obs.responses, obs.script_frames);
        assert!(obs.unexpected_errors.is_empty());
    }

    #[test]
    fn judge_flags_a_corrupted_answer_fingerprint() {
        let mut obs = clean_obs();
        let i = obs
            .answers
            .iter()
            .position(|a| a.outcome_tag != Outcome::Cancelled.tag())
            .expect("fixture answers at least one query");
        obs.answers[i].fingerprint ^= 1;
        let var = obs.answers[i].var;
        let ds = judge_service(&obs);
        assert!(
            ds.iter().any(|d| d.var == Some(var)),
            "seeded fingerprint corruption not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_broken_replay() {
        let mut obs = clean_obs();
        obs.replay_identical = false;
        let ds = judge_service(&obs);
        assert!(
            ds.iter().any(|d| d.detail.contains("replaying")),
            "seeded replay divergence not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_dropped_response() {
        let mut obs = clean_obs();
        obs.responses -= 1;
        let ds = judge_service(&obs);
        assert!(
            ds.iter().any(|d| d.detail.contains("responses")),
            "seeded dropped response not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_an_unexpected_error_frame() {
        let mut obs = clean_obs();
        obs.unexpected_errors.push("bad-frame".to_owned());
        let ds = judge_service(&obs);
        assert!(
            ds.iter().any(|d| d.detail.contains("bad-frame")),
            "seeded error frame not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_phantom_cancellation_and_a_phantom_panic() {
        let mut obs = clean_obs();
        let i = obs
            .answers
            .iter()
            .position(|a| a.outcome_tag == Outcome::Resolved.tag())
            .expect("fixture resolves at least one query");
        obs.answers[i].outcome_tag = Outcome::Cancelled.tag();
        obs.cancelled.clear();
        let ds = judge_service(&obs);
        assert!(
            ds.iter().any(|d| d.detail.contains("never")),
            "phantom cancellation not flagged: {ds:?}"
        );

        let mut obs = clean_obs();
        let i = obs
            .answers
            .iter()
            .position(|a| a.outcome_tag == Outcome::Resolved.tag())
            .expect("fixture resolves at least one query");
        obs.answers[i].outcome_tag = Outcome::Panicked.tag();
        let ds = judge_service(&obs);
        assert!(
            ds.iter().any(|d| d.detail.contains("outcome tag")),
            "phantom panic not flagged: {ds:?}"
        );
    }
}
