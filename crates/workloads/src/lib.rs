//! # dynsum-workloads — benchmarks for the evaluation
//!
//! The paper evaluates on nine Java programs from SPECjvm98/DaCapo
//! (Table 3). Their PAGs cannot be regenerated here (no Soot, no
//! benchmark jars), so this crate supplies the documented substitution:
//!
//! * [`PROFILES`] — the Table 3 shape statistics of all nine benchmarks,
//!   transcribed from the paper (the locality column is reproduced
//!   exactly — see the module tests);
//! * [`generate`] — a deterministic synthetic PAG generator that scales
//!   a profile down while preserving edge-kind ratios, library fan-in,
//!   field-name sharing and client query sites;
//! * [`motivating_pag`]/[`MOTIVATING_SOURCE`] — Figure 2's
//!   `Vector`/`Client` program, both hand-built (paper names, line-number
//!   call sites) and as compilable source;
//! * [`corpus`] — six hand-written mini-Java programs for end-to-end
//!   pipeline tests and examples.
//!
//! ```
//! use dynsum_workloads::{generate, GeneratorOptions, PROFILES};
//!
//! let workload = generate(&PROFILES[2], &GeneratorOptions::default()); // soot-c
//! assert_eq!(workload.name, "soot-c");
//! assert!(workload.pag.stats().locality() > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fuzz;
mod generator;
mod motivating;
mod profiles;
pub mod reduce;
pub mod service_fuzz;
pub mod wire;

pub use generator::{
    generate, try_generate, GeneratorError, GeneratorOptions, Workload, MAX_FIELD_CHAIN, MAX_SCALE,
};
pub use motivating::{motivating_pag, motivating_workload, Motivating, MOTIVATING_SOURCE};
pub use profiles::{BenchmarkProfile, PROFILES, SCALABILITY_BENCHMARKS};
