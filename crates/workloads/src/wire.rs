//! Workload interchange format — the PAG text format plus client sites.
//!
//! The fuzz→reduce→regress pipeline needs whole *workloads* (PAG +
//! [`ProgramInfo`]) on disk: the reducer emits minimal reproducers, the
//! divergence-corpus regression tests read them back. The PAG half
//! already has a deterministic, round-tripping text format
//! (`dynsum_pag::text`); this module wraps it with a header and the
//! client-site lines the PAG format does not carry:
//!
//! ```text
//! workload v1 <name>
//! pag v1
//! ...                      # the PAG text block, verbatim
//! entrypoint <method>      # optional
//! site cast <var> <class> <location>
//! site deref <var> <location>
//! site factory <method> <ret-var>
//! ```
//!
//! `site`/`entrypoint` lines may appear anywhere after the header (the
//! parser partitions by first token — neither is a PAG keyword), but
//! the writer always emits the PAG first. Locations may contain spaces
//! (they are the trailing tokens); node names cannot, exactly as in the
//! PAG format itself. `#` starts a comment at the start of a line or
//! after whitespace, so corpus files can carry provenance notes.

use std::fmt::Write as _;

use dynsum_pag::text::{parse_pag, write_pag};
use dynsum_pag::{CastSite, DerefSite, FactoryCandidate, Pag, ProgramInfo};

use crate::generator::Workload;

/// Error produced while parsing the workload wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// 1-based line number in the *workload* document.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WireError {}

fn err(line: usize, message: impl Into<String>) -> WireError {
    WireError {
        line,
        message: message.into(),
    }
}

/// Strips a trailing `#`-comment (only at line start or after
/// whitespace, mirroring the PAG format: names may contain `#`).
fn strip_comment(line: &str) -> &str {
    if let Some(rest) = line.trim_start().strip_prefix('#') {
        let _ = rest;
        return "";
    }
    match line.find(" #") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Serializes a workload. Deterministic; round-trips through
/// [`parse_workload`].
pub fn write_workload(w: &Workload) -> String {
    let mut s = String::new();
    writeln!(s, "workload v1 {}", w.name).unwrap();
    s.push_str(&write_pag(&w.pag));
    if let Some(m) = w.info.entry {
        writeln!(s, "entrypoint {}", w.pag.method(m).name).unwrap();
    }
    for c in &w.info.casts {
        writeln!(
            s,
            "site cast {} {} {}",
            w.pag.var(c.var).name,
            w.pag.hierarchy().name(c.target),
            c.location
        )
        .unwrap();
    }
    for d in &w.info.derefs {
        writeln!(s, "site deref {} {}", w.pag.var(d.base).name, d.location).unwrap();
    }
    for fc in &w.info.factories {
        writeln!(
            s,
            "site factory {} {}",
            w.pag.method(fc.method).name,
            w.pag.var(fc.ret).name
        )
        .unwrap();
    }
    s
}

/// Parses a workload document produced by [`write_workload`] (or
/// written by hand — the divergence corpus is).
///
/// # Errors
///
/// Returns a [`WireError`] (with the offending 1-based line) for a bad
/// header, a malformed PAG block, a malformed `site`/`entrypoint` line,
/// or a site referencing an unknown var/class/method.
pub fn parse_workload(input: &str) -> Result<Workload, WireError> {
    let mut lines = input.lines().enumerate();
    let name = loop {
        let (idx, raw) = lines
            .next()
            .ok_or_else(|| err(1, "empty document, expected `workload v1 <name>`"))?;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("workload v1 ")
            .ok_or_else(|| err(idx + 1, "expected `workload v1 <name>` header"))?;
        let name = rest.trim();
        if name.is_empty() {
            return Err(err(idx + 1, "workload name must not be empty"));
        }
        break name.to_owned();
    };

    // Partition the remainder: `site`/`entrypoint` lines vs the PAG
    // block (neither is a PAG keyword).
    let mut pag_lines: Vec<(usize, &str)> = Vec::new();
    let mut site_lines: Vec<(usize, Vec<&str>)> = Vec::new();
    for (idx, raw) in lines {
        let line = strip_comment(raw);
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.first() {
            Some(&"site") | Some(&"entrypoint") => site_lines.push((idx + 1, toks)),
            _ => pag_lines.push((idx + 1, raw)),
        }
    }

    let pag_text: String = pag_lines.iter().map(|(_, l)| format!("{l}\n")).collect();
    let pag = parse_pag(&pag_text).map_err(|e| {
        // Map the sub-document line number back to the workload file.
        let line = pag_lines
            .get(e.line.saturating_sub(1))
            .map(|(n, _)| *n)
            .unwrap_or(e.line);
        err(line, e.message)
    })?;

    let mut info = ProgramInfo::default();
    for (line_no, toks) in site_lines {
        match toks.as_slice() {
            ["entrypoint", m] => {
                let method = pag
                    .find_method(m)
                    .ok_or_else(|| err(line_no, format!("unknown method `{m}`")))?;
                info.entry = Some(method);
            }
            ["site", "cast", var, class, loc @ ..] if !loc.is_empty() => {
                let v = pag
                    .find_var(var)
                    .ok_or_else(|| err(line_no, format!("unknown var `{var}`")))?;
                let target = pag
                    .hierarchy()
                    .find(class)
                    .ok_or_else(|| err(line_no, format!("unknown class `{class}`")))?;
                info.casts.push(CastSite {
                    var: v,
                    target,
                    location: loc.join(" "),
                });
            }
            ["site", "deref", var, loc @ ..] if !loc.is_empty() => {
                let v = pag
                    .find_var(var)
                    .ok_or_else(|| err(line_no, format!("unknown var `{var}`")))?;
                info.derefs.push(DerefSite {
                    base: v,
                    location: loc.join(" "),
                });
            }
            ["site", "factory", method, ret] => {
                let m = pag
                    .find_method(method)
                    .ok_or_else(|| err(line_no, format!("unknown method `{method}`")))?;
                let r = pag
                    .find_var(ret)
                    .ok_or_else(|| err(line_no, format!("unknown var `{ret}`")))?;
                info.factories.push(FactoryCandidate { method: m, ret: r });
            }
            _ => {
                return Err(err(
                    line_no,
                    format!("malformed site line `{}`", toks.join(" ")),
                ))
            }
        }
    }

    Ok(Workload { name, pag, info })
}

/// Convenience: does `pag` still contain every node `info` refers to?
/// The reducer uses this to reject deletion candidates that orphan a
/// site (sites are deleted explicitly, never implicitly).
pub fn info_is_consistent(pag: &Pag, info: &ProgramInfo) -> bool {
    let var_ok = |v: dynsum_pag::VarId| v.index() < pag.num_vars();
    info.casts.iter().all(|c| var_ok(c.var))
        && info.derefs.iter().all(|d| var_ok(d.base))
        && info
            .factories
            .iter()
            .all(|f| var_ok(f.ret) && f.method.index() < pag.num_methods())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorOptions};
    use crate::profiles::PROFILES;

    fn sample() -> Workload {
        generate(
            &PROFILES[0],
            &GeneratorOptions {
                scale: 0.0,
                seed: 42,
                ..GeneratorOptions::default()
            },
        )
    }

    #[test]
    fn roundtrips_generated_workloads() {
        for (pidx, seed) in [(0usize, 1u64), (2, 7), (8, 3)] {
            let w = generate(
                &PROFILES[pidx],
                &GeneratorOptions {
                    scale: 0.005,
                    seed,
                    ..GeneratorOptions::default()
                },
            );
            let text = write_workload(&w);
            let back = parse_workload(&text).expect("roundtrip parse");
            assert_eq!(back.name, w.name);
            assert_eq!(write_workload(&back), text, "second trip not identical");
            assert_eq!(back.info.casts.len(), w.info.casts.len());
            assert_eq!(back.info.derefs.len(), w.info.derefs.len());
            assert_eq!(back.info.factories.len(), w.info.factories.len());
        }
    }

    #[test]
    fn tolerates_comments_blank_lines_and_spaced_locations() {
        let w = sample();
        let mut text = String::from("# corpus provenance note\n\n");
        text.push_str(&write_workload(&w));
        text.push_str("site deref G0 some location with spaces\n");
        let back = parse_workload(&text).unwrap();
        assert_eq!(
            back.info.derefs.last().unwrap().location,
            "some location with spaces"
        );
    }

    #[test]
    fn header_errors_are_typed() {
        assert!(parse_workload("").unwrap_err().message.contains("empty"));
        let e = parse_workload("pag v1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("workload v1"));
        assert!(parse_workload("workload v1  \n")
            .unwrap_err()
            .message
            .contains("name"));
    }

    #[test]
    fn unknown_references_are_errors_with_line_numbers() {
        let w = sample();
        let base = write_workload(&w);
        for (extra, what) in [
            ("site deref nosuchvar here\n", "unknown var"),
            ("site cast G0 NoClass here\n", "unknown class"),
            ("site factory nosuchmethod G0\n", "unknown method"),
            ("entrypoint nosuchmethod\n", "unknown method"),
            ("site cast G0\n", "malformed"),
            ("site bogus x y\n", "malformed"),
        ] {
            let text = format!("{base}{extra}");
            let e = parse_workload(&text).unwrap_err();
            assert!(
                e.message.contains(what),
                "`{extra}` gave `{e}`, wanted `{what}`"
            );
            assert_eq!(e.line, text.lines().count(), "wrong line for `{extra}`");
        }
    }

    #[test]
    fn pag_errors_keep_document_line_numbers() {
        let text = "workload v1 x\npag v1\nsite deref a b\nbogusline\n";
        let e = parse_workload(text).unwrap_err();
        assert_eq!(e.line, 4, "PAG error line not remapped: {e}");
    }
}
