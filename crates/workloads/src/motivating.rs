//! The paper's motivating example (Figure 2): the `Vector`/`Client`
//! program whose two queries `s1` and `s2` drive the whole of §3.4/§4.3
//! and Table 1.
//!
//! Provided in two equivalent forms:
//!
//! * [`motivating_pag`] — hand-built, node-for-node and edge-for-edge as
//!   drawn in Figure 2, with the paper's variable names (`t_add`,
//!   `this_get`, `ret_retrieve`, `o26`, …) and call-site labels (the
//!   source line numbers 22–33);
//! * [`MOTIVATING_SOURCE`] — the same program in the frontend's Java
//!   subset, for the end-to-end pipeline.
//!
//! The expected answers (§3.4): `pts(s1) = {o26}` and `pts(s2) = {o29}`.

use dynsum_pag::{DerefSite, Pag, PagBuilder, ProgramInfo, VarId};

use crate::generator::Workload;

/// Figure 2 in the frontend's syntax (same line structure as the paper's
/// listing).
pub const MOTIVATING_SOURCE: &str = r#"
class Vector {
    Object[] elems;
    int count;
    Vector() { Object[] t = new Object[8]; this.elems = t; }
    void add(Object p) { Object[] t = this.elems; t[0] = p; }
    Object get(int i) { Object[] t = this.elems; return t[i]; }
}
class Integer { }
class Client {
    Vector vec;
    Client() { }
    void set(Vector v) { this.vec = v; }
    Object retrieve() { Vector t = this.vec; return t.get(0); }
}
class Main {
    static void main() {
        Vector v1 = new Vector();
        v1.add(new Integer());
        Client c1 = new Client();
        c1.set(v1);
        Vector v2 = new Vector();
        v2.add(new String());
        Client c2 = new Client();
        c2.set(v2);
        Object s1 = c1.retrieve();
        Object s2 = c2.retrieve();
    }
}
class String { }
"#;

/// Handles to the interesting entities of the hand-built Figure 2 PAG.
#[derive(Debug, Clone)]
pub struct Motivating {
    /// The graph.
    pub pag: Pag,
    /// Client metadata (the two dereference-style queries `s1`, `s2`).
    pub info: ProgramInfo,
    /// The queried variable `s1` (must point to `o26` only).
    pub s1: VarId,
    /// The queried variable `s2` (must point to `o29` only).
    pub s2: VarId,
}

/// Builds Figure 2's PAG exactly as drawn, with the paper's names.
///
/// # Panics
///
/// Never panics on the fixed input; the construction is static.
pub fn motivating_pag() -> Motivating {
    let mut b = PagBuilder::new();

    let vector = b.add_class("Vector", None).unwrap();
    let client = b.add_class("Client", None).unwrap();
    let integer = b.add_class("Integer", None).unwrap();
    let string = b.add_class("String", None).unwrap();
    let objarr = b.add_class("Object[]", None).unwrap();

    let elems = b.field("elems");
    let arr = b.array_field();
    let vec_f = b.field("vec");

    // Methods.
    let m_vector_init = b.add_method("Vector.<init>", Some(vector)).unwrap();
    let m_add = b.add_method("Vector.add", Some(vector)).unwrap();
    let m_get = b.add_method("Vector.get", Some(vector)).unwrap();
    let m_client_init = b.add_method("Client.<init>", Some(client)).unwrap();
    let m_set = b.add_method("Client.set", Some(client)).unwrap();
    let m_retrieve = b.add_method("Client.retrieve", Some(client)).unwrap();
    let m_main = b.add_method("Main.main", None).unwrap();

    // Vector.<init>: t = new Object[8]; this.elems = t;
    let this_vector = b
        .add_local("this_Vector", m_vector_init, Some(vector))
        .unwrap();
    let t_vector = b
        .add_local("t_Vector", m_vector_init, Some(objarr))
        .unwrap();
    let o5 = b.add_obj("o5", Some(objarr), Some(m_vector_init)).unwrap();
    b.add_new(o5, t_vector).unwrap();
    b.add_store(elems, t_vector, this_vector).unwrap();

    // Vector.add(p): t = this.elems; t[count++] = p;
    let this_add = b.add_local("this_add", m_add, Some(vector)).unwrap();
    let p = b.add_local("p", m_add, None).unwrap();
    let t_add = b.add_local("t_add", m_add, Some(objarr)).unwrap();
    b.add_load(elems, this_add, t_add).unwrap();
    b.add_store(arr, p, t_add).unwrap();

    // Vector.get(i): t = this.elems; return t[i];
    let this_get = b.add_local("this_get", m_get, Some(vector)).unwrap();
    let t_get = b.add_local("t_get", m_get, Some(objarr)).unwrap();
    let ret_get = b.add_local("ret_get", m_get, None).unwrap();
    b.add_load(elems, this_get, t_get).unwrap();
    b.add_load(arr, t_get, ret_get).unwrap();

    // Client.<init>(v): this.vec = v;  (the two-argument constructor of
    // the paper's line 16; the figure routes both c1's and c2's vector
    // through `set` / ctor stores — we model the stores exactly as the
    // figure draws them: v_Client into this_Client, v_set into this_set.)
    let this_client = b
        .add_local("this_Client", m_client_init, Some(client))
        .unwrap();
    let v_client = b
        .add_local("v_Client", m_client_init, Some(vector))
        .unwrap();
    b.add_store(vec_f, v_client, this_client).unwrap();

    // Client.set(v): this.vec = v;
    let this_set = b.add_local("this_set", m_set, Some(client)).unwrap();
    let v_set = b.add_local("v_set", m_set, Some(vector)).unwrap();
    b.add_store(vec_f, v_set, this_set).unwrap();

    // Client.retrieve(): t = this.vec; return t.get(0);
    let this_retrieve = b
        .add_local("this_retrieve", m_retrieve, Some(client))
        .unwrap();
    let t_retrieve = b.add_local("t_retrieve", m_retrieve, Some(vector)).unwrap();
    let ret_retrieve = b.add_local("ret_retrieve", m_retrieve, None).unwrap();
    b.add_load(vec_f, this_retrieve, t_retrieve).unwrap();

    // Main.main.
    let v1 = b.add_local("v1", m_main, Some(vector)).unwrap();
    let v2 = b.add_local("v2", m_main, Some(vector)).unwrap();
    let c1 = b.add_local("c1", m_main, Some(client)).unwrap();
    let c2 = b.add_local("c2", m_main, Some(client)).unwrap();
    let tmp1 = b.add_local("tmp1", m_main, Some(integer)).unwrap();
    let tmp2 = b.add_local("tmp2", m_main, Some(string)).unwrap();
    let s1 = b.add_local("s1", m_main, None).unwrap();
    let s2 = b.add_local("s2", m_main, None).unwrap();

    let o25 = b.add_obj("o25", Some(vector), Some(m_main)).unwrap();
    let o26 = b.add_obj("o26", Some(integer), Some(m_main)).unwrap();
    let o27 = b.add_obj("o27", Some(client), Some(m_main)).unwrap();
    let o28 = b.add_obj("o28", Some(vector), Some(m_main)).unwrap();
    let o29 = b.add_obj("o29", Some(string), Some(m_main)).unwrap();
    let o30 = b.add_obj("o30", Some(client), Some(m_main)).unwrap();
    b.add_new(o25, v1).unwrap();
    b.add_new(o26, tmp1).unwrap();
    b.add_new(o27, c1).unwrap();
    b.add_new(o28, v2).unwrap();
    b.add_new(o29, tmp2).unwrap();
    b.add_new(o30, c2).unwrap();

    // Call sites, labelled with the paper's line numbers.
    let s22 = b.add_call_site("22", m_retrieve).unwrap(); // t.get(0)
    let s25 = b.add_call_site("25", m_main).unwrap(); // new Vector()
    let s26 = b.add_call_site("26", m_main).unwrap(); // v1.add(...)
    let s27 = b.add_call_site("27", m_main).unwrap(); // new Client(v1)
    let s28 = b.add_call_site("28", m_main).unwrap(); // new Vector()
    let s29 = b.add_call_site("29", m_main).unwrap(); // v2.add(...)
    let s31 = b.add_call_site("31", m_main).unwrap(); // c2.set(v2)
    let s32 = b.add_call_site("32", m_main).unwrap(); // c1.retrieve()
    let s33 = b.add_call_site("33", m_main).unwrap(); // c2.retrieve()

    b.add_entry(s25, v1, this_vector).unwrap();
    b.add_entry(s26, v1, this_add).unwrap();
    b.add_entry(s26, tmp1, p).unwrap();
    b.add_entry(s27, c1, this_client).unwrap();
    b.add_entry(s27, v1, v_client).unwrap();
    b.add_entry(s28, v2, this_vector).unwrap();
    b.add_entry(s29, v2, this_add).unwrap();
    b.add_entry(s29, tmp2, p).unwrap();
    b.add_entry(s31, c2, this_set).unwrap();
    b.add_entry(s31, v2, v_set).unwrap();
    b.add_entry(s32, c1, this_retrieve).unwrap();
    b.add_entry(s33, c2, this_retrieve).unwrap();
    b.add_entry(s22, t_retrieve, this_get).unwrap();
    b.add_exit(s22, ret_get, ret_retrieve).unwrap();
    b.add_exit(s32, ret_retrieve, s1).unwrap();
    b.add_exit(s33, ret_retrieve, s2).unwrap();

    let info = ProgramInfo {
        casts: Vec::new(),
        derefs: vec![
            DerefSite {
                base: s1,
                location: "Main.main:32".to_owned(),
            },
            DerefSite {
                base: s2,
                location: "Main.main:33".to_owned(),
            },
        ],
        factories: Vec::new(),
        entry: Some(m_main),
    };

    Motivating {
        pag: b.finish(),
        info,
        s1,
        s2,
    }
}

/// The motivating example wrapped as a [`Workload`].
pub fn motivating_workload() -> Workload {
    let m = motivating_pag();
    Workload {
        name: "motivating".to_owned(),
        pag: m.pag,
        info: m.info,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_pag_is_valid_and_sized_right() {
        let m = motivating_pag();
        assert!(dynsum_pag::validate(&m.pag).is_empty());
        assert_eq!(m.pag.num_methods(), 7);
        assert_eq!(m.pag.num_objs(), 7); // o5 + o25..o30
                                         // 7 new + 4 store + 4 load + 12 entry + 3 exit + 0 assign.
        assert_eq!(m.pag.stats().new_edges, 7);
        assert_eq!(m.pag.stats().store_edges, 4);
        assert_eq!(m.pag.stats().load_edges, 4);
        assert_eq!(m.pag.stats().entry_edges, 13);
        assert_eq!(m.pag.stats().exit_edges, 3);
    }

    #[test]
    fn names_match_the_paper() {
        let m = motivating_pag();
        for name in [
            "this_add",
            "t_add",
            "p",
            "this_Vector",
            "t_Vector",
            "this_get",
            "t_get",
            "ret_get",
            "this_retrieve",
            "t_retrieve",
            "ret_retrieve",
            "this_Client",
            "v_Client",
            "this_set",
            "v_set",
            "v1",
            "v2",
            "c1",
            "c2",
            "tmp1",
            "tmp2",
            "s1",
            "s2",
        ] {
            assert!(m.pag.find_var(name).is_some(), "missing {name}");
        }
        for label in ["o5", "o25", "o26", "o27", "o28", "o29", "o30"] {
            assert!(m.pag.find_obj(label).is_some(), "missing {label}");
        }
        assert!(m.pag.find_call_site("22").is_some());
        assert!(m.pag.find_call_site("33").is_some());
    }

    #[test]
    fn source_form_compiles() {
        let c = dynsum_frontend::compile(MOTIVATING_SOURCE).unwrap();
        assert!(dynsum_pag::validate(&c.pag).is_empty());
        assert_eq!(c.pag.num_methods(), 7);
    }
}
