//! Differential fuzzing of the four demand engines.
//!
//! wgslsmith-style pipeline: [`generate`](crate::generate) random
//! workloads across adversarial [`GeneratorOptions`], run every query
//! through all four engines, and cross-check the answers four ways —
//! each check is an invariant the paper's evaluation silently relies
//! on:
//!
//! 1. **Soundness vs the Andersen oracle** — a demand engine answers a
//!    query by exploring *part* of the program, so its answer (even a
//!    budget-truncated partial one) must be a subset of the exhaustive
//!    inclusion-based fixpoint. A superset means the engine invented a
//!    points-to relation.
//! 2. **Precision ordering between engines** — all four engines compute
//!    the same context-sensitive relation at full refinement, so any
//!    two *resolved* answers must be equal, and an unresolved partial
//!    answer must be a subset of every resolved one. With context
//!    sensitivity off, a resolved NOREFINE answer must equal the oracle
//!    *exactly* (§3.2).
//! 3. **Budget-exhaustion consistency** — cold traversal is
//!    deterministic, so a run at budget *b* is a prefix of a run at
//!    budget *B > b*: resolved-at-*b* implies resolved-at-*B* with the
//!    identical set; unresolved-at-*b* implies a subset.
//! 4. **Sequential-vs-session byte-identity** — with
//!    `deterministic_reuse` on, [`Session::run_batch`] must return
//!    byte-identical results ([`QueryResult::fingerprint`]) at 1, 2 and
//!    4 threads, and identical to a sequential engine over the same
//!    query order.
//!
//! The pipeline is split into an effectful half ([`observe`]: runs
//! engines, records everything) and a pure half ([`judge`]: folds
//! [`Observations`] into [`Divergence`]s). The split is what makes the
//! harness itself testable: mutation tests corrupt an `Observations`
//! value and assert the judge catches the seeded bug — see
//! `tests/divergence_corpus.rs`.

use std::collections::BTreeSet;

use dynsum_andersen::Andersen;
use dynsum_cfl::QueryResult;
use dynsum_core::{EngineConfig, EngineKind, Session, SessionQuery};
use dynsum_pag::{ObjId, VarId};

use crate::generator::{try_generate, GeneratorError, GeneratorOptions, Workload};
use crate::profiles::{BenchmarkProfile, PROFILES};

/// A named adversarial regime: generator knobs plus the engine
/// configuration they are checked under.
#[derive(Debug, Clone)]
pub struct FuzzProfile {
    /// Regime name (reported in divergences).
    pub name: &'static str,
    /// Generator knobs; the per-case seed overwrites `seed`.
    pub opts: GeneratorOptions,
    /// Engine configuration all four engines and the sessions run with.
    pub config: EngineConfig,
}

/// The standard regimes `make fuzz` sweeps. Each one aims a generator
/// knob at an engine limit:
///
/// * `baseline` — default-shaped graphs under a tight budget, so some
///   queries exhaust it (check 3 needs unresolved answers to bite);
/// * `deep_recursion` — heavy extra recursion against a small
///   `max_ctx_depth`, stressing the conservative context-abort path;
/// * `field_storm` — nested field chains against a small
///   `max_field_depth`, stressing the field-stack abort path;
/// * `degenerate` — scale-0 graphs, null-heavy payloads, a cap-0
///   summary cache (evict after every query) and a near-zero budget;
/// * `ci_oracle` — context-insensitive configuration, where resolved
///   NOREFINE answers must match Andersen *exactly*.
pub fn fuzz_profiles() -> Vec<FuzzProfile> {
    let base = GeneratorOptions::default();
    vec![
        FuzzProfile {
            name: "baseline",
            opts: GeneratorOptions {
                scale: 0.004,
                ..base
            },
            config: EngineConfig {
                budget: 20_000,
                ..EngineConfig::default()
            },
        },
        FuzzProfile {
            name: "deep_recursion",
            opts: GeneratorOptions {
                scale: 0.003,
                recursion_bias: 0.7,
                ..base
            },
            config: EngineConfig {
                budget: 10_000,
                max_ctx_depth: 8,
                ..EngineConfig::default()
            },
        },
        FuzzProfile {
            name: "field_storm",
            opts: GeneratorOptions {
                scale: 0.0,
                field_chain: 20,
                ..base
            },
            config: EngineConfig {
                budget: 15_000,
                max_field_depth: 12,
                ..EngineConfig::default()
            },
        },
        FuzzProfile {
            name: "degenerate",
            opts: GeneratorOptions {
                scale: 0.0,
                null_bias: 0.9,
                ..base
            },
            config: EngineConfig {
                budget: 2_000,
                max_refinements: 2,
                max_cached_summaries: Some(0),
                ..EngineConfig::default()
            },
        },
        FuzzProfile {
            name: "ci_oracle",
            opts: GeneratorOptions {
                scale: 0.003,
                ..base
            },
            config: EngineConfig {
                context_sensitive: false,
                ..EngineConfig::default()
            },
        },
    ]
}

/// What one engine answered for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineObservation {
    /// Which engine.
    pub kind: EngineKind,
    /// Did the query finish within budget?
    pub resolved: bool,
    /// Context-collapsed object set (the precision-comparison basis).
    pub objects: BTreeSet<ObjId>,
    /// Full-content stable digest ([`QueryResult::fingerprint`]).
    pub fingerprint: u64,
}

impl EngineObservation {
    fn from_result(kind: EngineKind, r: &QueryResult) -> Self {
        EngineObservation {
            kind,
            resolved: r.resolved,
            objects: r.pts.objects(),
            fingerprint: r.fingerprint(),
        }
    }
}

/// Everything observed about one query variable.
#[derive(Debug, Clone)]
pub struct QueryObservation {
    /// The queried variable.
    pub var: VarId,
    /// Human-readable site label (first client site naming `var`).
    pub label: String,
    /// The Andersen oracle's answer.
    pub oracle: BTreeSet<ObjId>,
    /// One answer per engine, in [`EngineKind::ALL`] order.
    pub engines: Vec<EngineObservation>,
}

/// A low-budget/high-budget probe pair for check 3.
#[derive(Debug, Clone)]
pub struct BudgetObservation {
    /// The probed variable.
    pub var: VarId,
    /// The probed engine (cold, fresh per probe).
    pub kind: EngineKind,
    /// Answer at the configured budget.
    pub lo: EngineObservation,
    /// Answer at a 16× budget.
    pub hi: EngineObservation,
}

/// Per-query result fingerprints of one `Session::run_batch` call.
#[derive(Debug, Clone)]
pub struct BatchObservation {
    /// The thread count the batch ran with.
    pub threads: usize,
    /// `QueryResult::fingerprint()` per query, in query order.
    pub fingerprints: Vec<u64>,
}

/// The complete record of one fuzz case, ready for [`judge`].
#[derive(Debug, Clone)]
pub struct Observations {
    /// Workload name (benchmark profile).
    pub workload: String,
    /// Was the configuration context-sensitive? (Gates the exact-oracle
    /// clause of the ordering check.)
    pub context_sensitive: bool,
    /// Per-query cross-engine observations.
    pub queries: Vec<QueryObservation>,
    /// Budget-consistency probes.
    pub budget: Vec<BudgetObservation>,
    /// Sequential DYNSUM fingerprints, in query order (the reference
    /// the batches must match).
    pub sequential: Vec<u64>,
    /// One entry per probed thread count.
    pub batches: Vec<BatchObservation>,
}

/// Which invariant a divergence violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivergenceKind {
    /// Engine answer ⊄ Andersen oracle.
    Soundness,
    /// Engine answers violate the precision ordering.
    Ordering,
    /// Context-insensitive resolved answer ≠ oracle.
    OracleExact,
    /// Higher budget lost answers or flipped resolution.
    Budget,
    /// `run_batch` results differ across thread counts or from
    /// sequential.
    Determinism,
}

impl DivergenceKind {
    /// Stable lower-case tag (corpus file names, CLI filters).
    pub fn tag(self) -> &'static str {
        match self {
            DivergenceKind::Soundness => "soundness",
            DivergenceKind::Ordering => "ordering",
            DivergenceKind::OracleExact => "oracle-exact",
            DivergenceKind::Budget => "budget",
            DivergenceKind::Determinism => "determinism",
        }
    }
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One invariant violation found by [`judge`].
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which invariant broke.
    pub kind: DivergenceKind,
    /// The engine at fault, when attributable to one.
    pub engine: Option<EngineKind>,
    /// The query variable involved, when attributable to one.
    pub var: Option<VarId>,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(e) = self.engine {
            write!(f, " {e}")?;
        }
        if let Some(v) = self.var {
            write!(f, " {v:?}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Tuning for [`observe`]: how many budget probes and which thread
/// counts. Defaults: 6 probes, threads 1/2/4.
#[derive(Debug, Clone)]
pub struct ObserveOptions {
    /// Number of query variables given cold low/high budget probes.
    pub budget_probes: usize,
    /// Thread counts to run the DYNSUM session batch with.
    pub thread_counts: Vec<usize>,
}

impl Default for ObserveOptions {
    fn default() -> Self {
        ObserveOptions {
            budget_probes: 6,
            thread_counts: vec![1, 2, 4],
        }
    }
}

/// The deduplicated query-variable stream of a workload: every client
/// site's variable, first-site label, in site order.
pub fn query_vars(w: &Workload) -> Vec<(VarId, String)> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let mut push = |v: VarId, label: String| {
        if seen.insert(v) {
            out.push((v, label));
        }
    };
    for c in &w.info.casts {
        push(c.var, format!("cast@{}", c.location));
    }
    for d in &w.info.derefs {
        push(d.base, format!("deref@{}", d.location));
    }
    for f in &w.info.factories {
        push(f.ret, format!("factory@{}", w.pag.method(f.method).name));
    }
    out
}

/// Runs every engine, the oracle, the budget probes and the session
/// batches over `w`, recording everything for [`judge`].
pub fn observe(w: &Workload, config: &EngineConfig, opts: &ObserveOptions) -> Observations {
    let vars = query_vars(w);
    let oracle = Andersen::analyze(&w.pag);

    // Check 1+2 material: each engine runs the whole stream in order on
    // one instance (cross-query caches warm up exactly as in production).
    let mut per_engine: Vec<Vec<EngineObservation>> = Vec::new();
    for kind in EngineKind::ALL {
        let mut engine = kind.build(&w.pag, *config);
        per_engine.push(
            vars.iter()
                .map(|&(v, _)| EngineObservation::from_result(kind, &engine.points_to(v)))
                .collect(),
        );
    }

    let queries: Vec<QueryObservation> = vars
        .iter()
        .enumerate()
        .map(|(i, (v, label))| QueryObservation {
            var: *v,
            label: label.clone(),
            oracle: oracle.var_pts(*v).iter().copied().collect(),
            engines: per_engine.iter().map(|obs| obs[i].clone()).collect(),
        })
        .collect();

    // Check 3 material: cold engines, fresh per probe, at 1× and 16×
    // budget (cold ⇒ no cache coupling between the two runs).
    let mut budget = Vec::new();
    let hi_config = EngineConfig {
        budget: config.budget.saturating_mul(16),
        ..*config
    };
    for &(v, _) in vars.iter().take(opts.budget_probes) {
        for kind in [EngineKind::NoRefine, EngineKind::DynSum] {
            let lo =
                EngineObservation::from_result(kind, &kind.build(&w.pag, *config).points_to(v));
            let hi =
                EngineObservation::from_result(kind, &kind.build(&w.pag, hi_config).points_to(v));
            budget.push(BudgetObservation {
                var: v,
                kind,
                lo,
                hi,
            });
        }
    }

    // Check 4 material: DYNSUM sessions (the engine with shared mutable
    // cache state — where thread-count nondeterminism would live).
    let dynsum_idx = EngineKind::ALL
        .iter()
        .position(|k| *k == EngineKind::DynSum)
        .unwrap();
    let sequential: Vec<u64> = queries
        .iter()
        .map(|q| q.engines[dynsum_idx].fingerprint)
        .collect();
    let batch: Vec<SessionQuery<'_>> = vars.iter().map(|&(v, _)| SessionQuery::new(v)).collect();
    let mut batches = Vec::new();
    for &threads in &opts.thread_counts {
        let mut session = Session::with_config(&w.pag, EngineKind::DynSum, *config);
        let results = session.run_batch(&batch, threads);
        batches.push(BatchObservation {
            threads,
            fingerprints: results.iter().map(QueryResult::fingerprint).collect(),
        });
    }

    Observations {
        workload: w.name.clone(),
        context_sensitive: config.context_sensitive,
        queries,
        budget,
        sequential,
        batches,
    }
}

fn subset(a: &BTreeSet<ObjId>, b: &BTreeSet<ObjId>) -> bool {
    a.is_subset(b)
}

/// Folds [`Observations`] into the list of invariant violations. Pure:
/// corrupting the observations and re-judging is how the harness's own
/// detection power is tested.
pub fn judge(obs: &Observations) -> Vec<Divergence> {
    let mut out = Vec::new();

    for q in &obs.queries {
        for e in &q.engines {
            // Check 1: soundness. Partial answers included — an engine
            // may under-approximate, never over-approximate.
            if !subset(&e.objects, &q.oracle) {
                let extra: Vec<ObjId> = e.objects.difference(&q.oracle).copied().collect();
                out.push(Divergence {
                    kind: DivergenceKind::Soundness,
                    engine: Some(e.kind),
                    var: Some(q.var),
                    detail: format!(
                        "{} answered {} objects not in the Andersen oracle ({:?}) at {}",
                        e.kind,
                        extra.len(),
                        extra,
                        q.label
                    ),
                });
            }
        }

        // Check 2: precision ordering.
        let resolved: Vec<&EngineObservation> = q.engines.iter().filter(|e| e.resolved).collect();
        if let Some(first) = resolved.first() {
            for e in resolved.iter().skip(1) {
                if e.objects != first.objects {
                    out.push(Divergence {
                        kind: DivergenceKind::Ordering,
                        engine: Some(e.kind),
                        var: Some(q.var),
                        detail: format!(
                            "resolved answers disagree: {} has {} objects, {} has {} at {}",
                            first.kind,
                            first.objects.len(),
                            e.kind,
                            e.objects.len(),
                            q.label
                        ),
                    });
                }
            }
            for e in q.engines.iter().filter(|e| !e.resolved) {
                if !subset(&e.objects, &first.objects) {
                    out.push(Divergence {
                        kind: DivergenceKind::Ordering,
                        engine: Some(e.kind),
                        var: Some(q.var),
                        detail: format!(
                            "partial {} answer exceeds resolved {} answer at {}",
                            e.kind, first.kind, q.label
                        ),
                    });
                }
            }
        }

        // Check 2b: with context sensitivity off, a resolved answer is
        // the `L_FT` relation — exactly Andersen (§3.2).
        if !obs.context_sensitive {
            for e in q.engines.iter().filter(|e| e.resolved) {
                if e.objects != q.oracle {
                    out.push(Divergence {
                        kind: DivergenceKind::OracleExact,
                        engine: Some(e.kind),
                        var: Some(q.var),
                        detail: format!(
                            "context-insensitive resolved answer ({} objects) != oracle ({}) at {}",
                            e.objects.len(),
                            q.oracle.len(),
                            q.label
                        ),
                    });
                }
            }
        }
    }

    // Check 3: budget monotonicity (prefix property of deterministic
    // cold traversal).
    for p in &obs.budget {
        if p.lo.resolved {
            if !p.hi.resolved || p.hi.objects != p.lo.objects {
                out.push(Divergence {
                    kind: DivergenceKind::Budget,
                    engine: Some(p.kind),
                    var: Some(p.var),
                    detail: format!(
                        "resolved at budget b ({} objects) but at 16b: resolved={}, {} objects",
                        p.lo.objects.len(),
                        p.hi.resolved,
                        p.hi.objects.len()
                    ),
                });
            }
        } else if !subset(&p.lo.objects, &p.hi.objects) {
            out.push(Divergence {
                kind: DivergenceKind::Budget,
                engine: Some(p.kind),
                var: Some(p.var),
                detail: "partial low-budget answer not a subset of the high-budget answer"
                    .to_owned(),
            });
        }
    }

    // Check 4: thread-count determinism + sequential identity.
    for b in &obs.batches {
        if b.fingerprints != obs.sequential {
            let first_bad = b
                .fingerprints
                .iter()
                .zip(&obs.sequential)
                .position(|(a, s)| a != s);
            out.push(Divergence {
                kind: DivergenceKind::Determinism,
                engine: Some(EngineKind::DynSum),
                var: first_bad.map(|i| obs.queries[i].var),
                detail: format!(
                    "run_batch({} threads) differs from sequential at query index {:?}",
                    b.threads, first_bad
                ),
            });
        }
    }

    out
}

/// One divergence found by a fuzz run, with everything needed to
/// reproduce and reduce it.
#[derive(Debug, Clone)]
pub struct FoundDivergence {
    /// Fuzz regime name.
    pub profile: &'static str,
    /// Benchmark profile (workload shape).
    pub workload: String,
    /// Full generator options (including the derived seed).
    pub opts: GeneratorOptions,
    /// Engine configuration of the regime.
    pub config: EngineConfig,
    /// The violation.
    pub divergence: Divergence,
}

/// Summary of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Total query variables checked across all cases.
    pub queries: usize,
    /// Distinct benchmark profiles exercised.
    pub profiles_covered: BTreeSet<String>,
    /// Every divergence found (empty = clean run).
    pub divergences: Vec<FoundDivergence>,
}

/// Derives the per-case generator seed from the run's base seed. Public
/// so a reproducer can regenerate case *i* exactly.
pub fn case_seed(base_seed: u64, case: usize) -> u64 {
    // SplitMix64-style diffusion: adjacent cases get unrelated streams.
    let mut z = base_seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `(fuzz regime, benchmark profile, options)` triple for case `i`
/// of a run — the single source of truth shared by the fuzz loop and
/// reproducers.
pub fn case_plan(
    base_seed: u64,
    case: usize,
) -> (FuzzProfile, &'static BenchmarkProfile, GeneratorOptions) {
    let profiles = fuzz_profiles();
    let fp = profiles[case % profiles.len()].clone();
    let bench = &PROFILES[case % PROFILES.len()];
    let opts = GeneratorOptions {
        seed: case_seed(base_seed, case),
        ..fp.opts
    };
    (fp, bench, opts)
}

/// Runs `cases` fuzz cases from `base_seed`, invoking `progress` after
/// each case with `(index, divergences-so-far)`; returning `false`
/// stops the run early (the CLI's `--max-seconds` deadline).
///
/// # Errors
///
/// Propagates a [`GeneratorError`] only if a fuzz regime itself is
/// invalid (a harness bug — regime options are fixed, not fuzzed).
pub fn run_fuzz(
    cases: usize,
    base_seed: u64,
    observe_opts: &ObserveOptions,
    mut progress: impl FnMut(usize, usize) -> bool,
) -> Result<FuzzReport, GeneratorError> {
    let mut report = FuzzReport::default();
    for i in 0..cases {
        let (fp, bench, opts) = case_plan(base_seed, i);
        let w = try_generate(bench, &opts)?;
        let obs = observe(&w, &fp.config, observe_opts);
        report.cases += 1;
        report.queries += obs.queries.len();
        report.profiles_covered.insert(w.name.clone());
        for d in judge(&obs) {
            report.divergences.push(FoundDivergence {
                profile: fp.name,
                workload: w.name.clone(),
                opts,
                config: fp.config,
                divergence: d,
            });
        }
        if !progress(i, report.divergences.len()) {
            break;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    fn small_case() -> (Workload, EngineConfig) {
        let (fp, bench, opts) = case_plan(0xF0CC, 0);
        (generate(bench, &opts), fp.config)
    }

    #[test]
    fn observe_then_judge_is_clean_on_a_small_case() {
        let (w, config) = small_case();
        let obs = observe(&w, &config, &ObserveOptions::default());
        let divergences = judge(&obs);
        assert!(
            divergences.is_empty(),
            "unexpected divergences: {divergences:?}"
        );
        assert!(!obs.queries.is_empty());
        assert_eq!(obs.batches.len(), 3);
    }

    /// A clean observation fixture for the mutation tests below: each
    /// one seeds exactly one corruption into a copy and asserts the
    /// judge attributes it to the right invariant. This is the
    /// detection-power half of the observe/judge split — a judge that
    /// misses a seeded bug would silently pass every fuzz run.
    fn clean_obs() -> Observations {
        let (w, config) = small_case();
        let obs = observe(&w, &config, &ObserveOptions::default());
        assert!(judge(&obs).is_empty(), "mutation fixture must start clean");
        obs
    }

    #[test]
    fn judge_flags_a_seeded_soundness_violation() {
        let mut obs = clean_obs();
        // Invent a points-to relation: an object no oracle answer holds.
        let bogus = ObjId::from_raw(u32::MAX - 1);
        let culprit = obs.queries[0].engines[0].kind;
        obs.queries[0].engines[0].objects.insert(bogus);
        let ds = judge(&obs);
        assert!(
            ds.iter().any(|d| d.kind == DivergenceKind::Soundness
                && d.engine == Some(culprit)
                && d.var == Some(obs.queries[0].var)),
            "seeded superset not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_seeded_ordering_violation() {
        let mut obs = clean_obs();
        // Drop one object from a resolved engine's answer: still sound
        // (a subset of the oracle), but resolved answers now disagree.
        let q = obs
            .queries
            .iter_mut()
            .find(|q| q.engines.iter().all(|e| e.resolved) && !q.engines[1].objects.is_empty())
            .expect("fixture needs a fully resolved nonempty query");
        let victim = *q.engines[1].objects.iter().next().unwrap();
        q.engines[1].objects.remove(&victim);
        let culprit = q.engines[1].kind;
        let var = q.var;
        let ds = judge(&obs);
        assert!(
            ds.iter()
                .any(|d| d.kind == DivergenceKind::Ordering && d.engine == Some(culprit)),
            "seeded disagreement not flagged: {ds:?}"
        );
        assert!(
            !ds.iter()
                .any(|d| d.kind == DivergenceKind::Soundness && d.var == Some(var)),
            "removing an object must not read as a soundness bug"
        );
    }

    #[test]
    fn judge_flags_a_seeded_budget_violation() {
        let mut obs = clean_obs();
        // A query that resolved at budget b must stay resolved at 16b.
        let p = obs
            .budget
            .iter_mut()
            .find(|p| p.lo.resolved)
            .expect("fixture needs a resolved budget probe");
        p.hi.resolved = false;
        let culprit = p.kind;
        let ds = judge(&obs);
        assert!(
            ds.iter()
                .any(|d| d.kind == DivergenceKind::Budget && d.engine == Some(culprit)),
            "seeded resolution flip not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_seeded_determinism_violation() {
        let mut obs = clean_obs();
        // One bit of one batched result differing from the sequential
        // reference is the smallest possible nondeterminism.
        obs.batches[1].fingerprints[0] ^= 1;
        let ds = judge(&obs);
        let hit = ds
            .iter()
            .find(|d| d.kind == DivergenceKind::Determinism)
            .unwrap_or_else(|| panic!("seeded fingerprint flip not flagged: {ds:?}"));
        assert_eq!(hit.engine, Some(EngineKind::DynSum));
        assert_eq!(hit.var, Some(obs.queries[0].var));
    }

    #[test]
    fn case_seed_is_deterministic_and_spread() {
        assert_eq!(case_seed(1, 5), case_seed(1, 5));
        assert_ne!(case_seed(1, 5), case_seed(1, 6));
        assert_ne!(case_seed(1, 5), case_seed(2, 5));
    }

    #[test]
    fn fuzz_profiles_cover_the_advertised_regimes() {
        let ps = fuzz_profiles();
        assert!(ps.len() >= 4);
        assert!(ps.iter().any(|p| p.opts.recursion_bias > 0.0));
        assert!(ps.iter().any(|p| p.opts.field_chain > 0));
        assert!(ps.iter().any(|p| p.config.max_cached_summaries == Some(0)));
        assert!(ps.iter().any(|p| !p.config.context_sensitive));
        for p in &ps {
            assert!(
                p.config.deterministic_reuse,
                "{}: determinism check requires deterministic_reuse",
                p.name
            );
        }
    }
}
