//! Differential fuzzing of the four demand engines.
//!
//! wgslsmith-style pipeline: [`generate`](crate::generate) random
//! workloads across adversarial [`GeneratorOptions`], run every query
//! through all four engines, and cross-check the answers four ways —
//! each check is an invariant the paper's evaluation silently relies
//! on:
//!
//! 1. **Soundness vs the Andersen oracle** — a demand engine answers a
//!    query by exploring *part* of the program, so its answer (even a
//!    budget-truncated partial one) must be a subset of the exhaustive
//!    inclusion-based fixpoint. A superset means the engine invented a
//!    points-to relation.
//! 2. **Precision ordering between engines** — all four engines compute
//!    the same context-sensitive relation at full refinement, so any
//!    two *resolved* answers must be equal, and an unresolved partial
//!    answer must be a subset of every resolved one. With context
//!    sensitivity off, a resolved NOREFINE answer must equal the oracle
//!    *exactly* (§3.2).
//! 3. **Budget-exhaustion consistency** — cold traversal is
//!    deterministic, so a run at budget *b* is a prefix of a run at
//!    budget *B > b*: resolved-at-*b* implies resolved-at-*B* with the
//!    identical set; unresolved-at-*b* implies a subset.
//! 4. **Sequential-vs-session byte-identity** — with
//!    `deterministic_reuse` on, [`Session::run_batch`] must return
//!    byte-identical results ([`QueryResult::fingerprint`]) at 1, 2 and
//!    4 threads, and identical to a sequential engine over the same
//!    query order.
//! 5. **Fault integrity** (the `fault_injection` regime) — a batch run
//!    under a deterministic [`FaultPlan`] (injected panics, cancel and
//!    deadline fuses, a forced spawn failure, a snapshot IO error) must
//!    surface every fault per query without poisoning the session: the
//!    un-faulted queries answer byte-identically to a clean cold
//!    session, and every follow-up batch on the same session is
//!    byte-identical to that cold reference at 1, 2 and 4 threads.
//! 6. **Service identity** (the `service` regime) — a random
//!    multi-client script (interleaved queries, batches, cancels and
//!    invalidations) against the analysis daemon must answer every
//!    frame, answer every query byte-identically to a clean
//!    single-client session, and replay byte-identically — see
//!    [`service_fuzz`](crate::service_fuzz).
//!
//! The pipeline is split into an effectful half ([`observe`]: runs
//! engines, records everything) and a pure half ([`judge`]: folds
//! [`Observations`] into [`Divergence`]s). The split is what makes the
//! harness itself testable: mutation tests corrupt an `Observations`
//! value and assert the judge catches the seeded bug — see
//! `tests/divergence_corpus.rs`.

use std::collections::BTreeSet;

use dynsum_andersen::Andersen;
use dynsum_cfl::{Outcome, QueryResult};
use dynsum_core::{BatchControl, EngineConfig, EngineKind, FaultPlan, Session, SessionQuery};
use dynsum_pag::{ObjId, VarId};

use crate::generator::{try_generate, GeneratorError, GeneratorOptions, Workload};
use crate::profiles::{BenchmarkProfile, PROFILES};

/// A named adversarial regime: generator knobs plus the engine
/// configuration they are checked under.
#[derive(Debug, Clone)]
pub struct FuzzProfile {
    /// Regime name (reported in divergences).
    pub name: &'static str,
    /// Generator knobs; the per-case seed overwrites `seed`.
    pub opts: GeneratorOptions,
    /// Engine configuration all four engines and the sessions run with.
    pub config: EngineConfig,
    /// Run the fault-injection observation (check 5) for this regime's
    /// cases, with a [`FaultPlan`] derived from the case seed.
    pub inject_faults: bool,
    /// Run the daemon script observation (check 6) for this regime's
    /// cases, with a client script derived from the case seed.
    pub exercise_service: bool,
}

/// The standard regimes `make fuzz` sweeps. Each one aims a generator
/// knob at an engine limit:
///
/// * `baseline` — default-shaped graphs under a tight budget, so some
///   queries exhaust it (check 3 needs unresolved answers to bite);
/// * `deep_recursion` — heavy extra recursion against a small
///   `max_ctx_depth`, stressing the conservative context-abort path;
/// * `field_storm` — nested field chains against a small
///   `max_field_depth`, stressing the field-stack abort path;
/// * `degenerate` — scale-0 graphs, null-heavy payloads, a cap-0
///   summary cache (evict after every query) and a near-zero budget;
/// * `ci_oracle` — context-insensitive configuration, where resolved
///   NOREFINE answers must match Andersen *exactly*;
/// * `fault_injection` — baseline-shaped graphs run through
///   [`Session::run_batch_with`] under a seeded [`FaultPlan`] (injected
///   panics, cancel/deadline fuses, a forced spawn failure, a snapshot
///   IO error), checking the fault-integrity invariant (check 5);
/// * `service` — baseline-shaped graphs served by the analysis daemon
///   to a seeded multi-client script (interleaved queries, batches,
///   cancels and invalidations), checking the service-identity
///   invariant (check 6).
pub fn fuzz_profiles() -> Vec<FuzzProfile> {
    let base = GeneratorOptions::default();
    vec![
        FuzzProfile {
            name: "baseline",
            opts: GeneratorOptions {
                scale: 0.004,
                ..base
            },
            config: EngineConfig {
                budget: 20_000,
                ..EngineConfig::default()
            },
            inject_faults: false,
            exercise_service: false,
        },
        FuzzProfile {
            name: "deep_recursion",
            opts: GeneratorOptions {
                scale: 0.003,
                recursion_bias: 0.7,
                ..base
            },
            config: EngineConfig {
                budget: 10_000,
                max_ctx_depth: 8,
                ..EngineConfig::default()
            },
            inject_faults: false,
            exercise_service: false,
        },
        FuzzProfile {
            name: "field_storm",
            opts: GeneratorOptions {
                scale: 0.0,
                field_chain: 20,
                ..base
            },
            config: EngineConfig {
                budget: 15_000,
                max_field_depth: 12,
                ..EngineConfig::default()
            },
            inject_faults: false,
            exercise_service: false,
        },
        FuzzProfile {
            name: "degenerate",
            opts: GeneratorOptions {
                scale: 0.0,
                null_bias: 0.9,
                ..base
            },
            config: EngineConfig {
                budget: 2_000,
                max_refinements: 2,
                max_cached_summaries: Some(0),
                ..EngineConfig::default()
            },
            inject_faults: false,
            exercise_service: false,
        },
        FuzzProfile {
            name: "ci_oracle",
            opts: GeneratorOptions {
                scale: 0.003,
                ..base
            },
            config: EngineConfig {
                context_sensitive: false,
                ..EngineConfig::default()
            },
            inject_faults: false,
            exercise_service: false,
        },
        FuzzProfile {
            name: "fault_injection",
            opts: GeneratorOptions {
                scale: 0.003,
                ..base
            },
            config: EngineConfig {
                budget: 20_000,
                ..EngineConfig::default()
            },
            inject_faults: true,
            exercise_service: false,
        },
        FuzzProfile {
            name: "service",
            opts: GeneratorOptions {
                scale: 0.003,
                ..base
            },
            config: EngineConfig {
                budget: 20_000,
                ..EngineConfig::default()
            },
            inject_faults: false,
            exercise_service: true,
        },
    ]
}

/// What one engine answered for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineObservation {
    /// Which engine.
    pub kind: EngineKind,
    /// Did the query finish within budget?
    pub resolved: bool,
    /// Context-collapsed object set (the precision-comparison basis).
    pub objects: BTreeSet<ObjId>,
    /// Full-content stable digest ([`QueryResult::fingerprint`]).
    pub fingerprint: u64,
}

impl EngineObservation {
    fn from_result(kind: EngineKind, r: &QueryResult) -> Self {
        EngineObservation {
            kind,
            resolved: r.resolved,
            objects: r.pts.objects(),
            fingerprint: r.fingerprint(),
        }
    }
}

/// Everything observed about one query variable.
#[derive(Debug, Clone)]
pub struct QueryObservation {
    /// The queried variable.
    pub var: VarId,
    /// Human-readable site label (first client site naming `var`).
    pub label: String,
    /// The Andersen oracle's answer.
    pub oracle: BTreeSet<ObjId>,
    /// One answer per engine, in [`EngineKind::ALL`] order.
    pub engines: Vec<EngineObservation>,
}

/// A low-budget/high-budget probe pair for check 3.
#[derive(Debug, Clone)]
pub struct BudgetObservation {
    /// The probed variable.
    pub var: VarId,
    /// The probed engine (cold, fresh per probe).
    pub kind: EngineKind,
    /// Answer at the configured budget.
    pub lo: EngineObservation,
    /// Answer at a 16× budget.
    pub hi: EngineObservation,
}

/// Per-query result fingerprints of one `Session::run_batch` call.
#[derive(Debug, Clone)]
pub struct BatchObservation {
    /// The thread count the batch ran with.
    pub threads: usize,
    /// `QueryResult::fingerprint()` per query, in query order.
    pub fingerprints: Vec<u64>,
}

/// The record of one fault-injection run (check 5): a faulted batch on
/// a fresh DYNSUM session, followed by clean batches on that *same*
/// session, against a cold-session reference.
#[derive(Debug, Clone)]
pub struct FaultObservation {
    /// The deterministic plan that was injected.
    pub plan: FaultPlan,
    /// Clean cold-session fingerprints, in query order — the value every
    /// un-faulted and post-fault answer must reproduce exactly.
    pub reference: Vec<u64>,
    /// [`Outcome::tag`] per query of the faulted batch.
    pub faulted_tags: Vec<u8>,
    /// Fingerprint per query of the faulted batch.
    pub faulted_fingerprints: Vec<u64>,
    /// Did the snapshot save through the failing writer surface an
    /// `Err`? (It must — swallowing the IO fault would hand callers a
    /// truncated snapshot path.)
    pub snapshot_error_surfaced: bool,
    /// Clean follow-up batches on the faulted session, one per probed
    /// thread count.
    pub after: Vec<BatchObservation>,
}

/// The complete record of one fuzz case, ready for [`judge`].
#[derive(Debug, Clone)]
pub struct Observations {
    /// Workload name (benchmark profile).
    pub workload: String,
    /// Was the configuration context-sensitive? (Gates the exact-oracle
    /// clause of the ordering check.)
    pub context_sensitive: bool,
    /// Per-query cross-engine observations.
    pub queries: Vec<QueryObservation>,
    /// Budget-consistency probes.
    pub budget: Vec<BudgetObservation>,
    /// Sequential DYNSUM fingerprints, in query order (the reference
    /// the batches must match).
    pub sequential: Vec<u64>,
    /// One entry per probed thread count.
    pub batches: Vec<BatchObservation>,
    /// Fault-injection record (check 5); `None` unless the regime
    /// injects faults.
    pub fault: Option<FaultObservation>,
    /// Daemon script record (check 6); `None` unless the regime
    /// exercises the service.
    pub service: Option<crate::service_fuzz::ServiceObservation>,
}

/// Which invariant a divergence violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivergenceKind {
    /// Engine answer ⊄ Andersen oracle.
    Soundness,
    /// Engine answers violate the precision ordering.
    Ordering,
    /// Context-insensitive resolved answer ≠ oracle.
    OracleExact,
    /// Higher budget lost answers or flipped resolution.
    Budget,
    /// `run_batch` results differ across thread counts or from
    /// sequential.
    Determinism,
    /// An injected fault was swallowed, leaked into an un-faulted
    /// query, or left a trace in the session's shared state.
    FaultIntegrity,
    /// The daemon dropped a frame, answered a well-formed frame with an
    /// error, diverged from the clean single-client reference, invented
    /// a cancellation, or failed to replay byte-identically.
    Service,
}

impl DivergenceKind {
    /// Stable lower-case tag (corpus file names, CLI filters).
    pub fn tag(self) -> &'static str {
        match self {
            DivergenceKind::Soundness => "soundness",
            DivergenceKind::Ordering => "ordering",
            DivergenceKind::OracleExact => "oracle-exact",
            DivergenceKind::Budget => "budget",
            DivergenceKind::Determinism => "determinism",
            DivergenceKind::FaultIntegrity => "fault-integrity",
            DivergenceKind::Service => "service",
        }
    }
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// One invariant violation found by [`judge`].
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which invariant broke.
    pub kind: DivergenceKind,
    /// The engine at fault, when attributable to one.
    pub engine: Option<EngineKind>,
    /// The query variable involved, when attributable to one.
    pub var: Option<VarId>,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(e) = self.engine {
            write!(f, " {e}")?;
        }
        if let Some(v) = self.var {
            write!(f, " {v:?}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Tuning for [`observe`]: how many budget probes and which thread
/// counts. Defaults: 6 probes, threads 1/2/4.
#[derive(Debug, Clone)]
pub struct ObserveOptions {
    /// Number of query variables given cold low/high budget probes.
    pub budget_probes: usize,
    /// Thread counts to run the DYNSUM session batch with.
    pub thread_counts: Vec<usize>,
    /// When set, also run the fault-injection observation (check 5)
    /// with the [`FaultPlan`] derived from this seed by
    /// [`fault_plan_for`].
    pub fault_seed: Option<u64>,
    /// When set, also run the daemon script observation (check 6) with
    /// the client script derived from this seed by
    /// [`generate_script`](crate::service_fuzz::generate_script).
    pub service_seed: Option<u64>,
}

impl Default for ObserveOptions {
    fn default() -> Self {
        ObserveOptions {
            budget_probes: 6,
            thread_counts: vec![1, 2, 4],
            fault_seed: None,
            service_seed: None,
        }
    }
}

/// The per-case [`ObserveOptions`]: `base`, plus the case's fault seed
/// when the regime injects faults. The single source of truth shared by
/// [`run_fuzz`] and reproducers, so a `fault-integrity` divergence
/// replays the exact plan that found it.
pub fn observe_opts_for(fp: &FuzzProfile, case_seed: u64, base: &ObserveOptions) -> ObserveOptions {
    ObserveOptions {
        fault_seed: fp.inject_faults.then_some(case_seed),
        service_seed: fp.exercise_service.then_some(case_seed),
        ..base.clone()
    }
}

/// The deduplicated query-variable stream of a workload: every client
/// site's variable, first-site label, in site order.
pub fn query_vars(w: &Workload) -> Vec<(VarId, String)> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let mut push = |v: VarId, label: String| {
        if seen.insert(v) {
            out.push((v, label));
        }
    };
    for c in &w.info.casts {
        push(c.var, format!("cast@{}", c.location));
    }
    for d in &w.info.derefs {
        push(d.base, format!("deref@{}", d.location));
    }
    for f in &w.info.factories {
        push(f.ret, format!("factory@{}", w.pag.method(f.method).name));
    }
    out
}

/// Runs every engine, the oracle, the budget probes and the session
/// batches over `w`, recording everything for [`judge`].
pub fn observe(w: &Workload, config: &EngineConfig, opts: &ObserveOptions) -> Observations {
    let vars = query_vars(w);
    let oracle = Andersen::analyze(&w.pag);

    // Check 1+2 material: each engine runs the whole stream in order on
    // one instance (cross-query caches warm up exactly as in production).
    let mut per_engine: Vec<Vec<EngineObservation>> = Vec::new();
    for kind in EngineKind::ALL {
        let mut engine = kind.build(&w.pag, *config);
        per_engine.push(
            vars.iter()
                .map(|&(v, _)| EngineObservation::from_result(kind, &engine.points_to(v)))
                .collect(),
        );
    }

    let queries: Vec<QueryObservation> = vars
        .iter()
        .enumerate()
        .map(|(i, (v, label))| QueryObservation {
            var: *v,
            label: label.clone(),
            oracle: oracle.var_pts(*v).iter().copied().collect(),
            engines: per_engine.iter().map(|obs| obs[i].clone()).collect(),
        })
        .collect();

    // Check 3 material: cold engines, fresh per probe, at 1× and 16×
    // budget (cold ⇒ no cache coupling between the two runs).
    let mut budget = Vec::new();
    let hi_config = EngineConfig {
        budget: config.budget.saturating_mul(16),
        ..*config
    };
    for &(v, _) in vars.iter().take(opts.budget_probes) {
        for kind in [EngineKind::NoRefine, EngineKind::DynSum] {
            let lo =
                EngineObservation::from_result(kind, &kind.build(&w.pag, *config).points_to(v));
            let hi =
                EngineObservation::from_result(kind, &kind.build(&w.pag, hi_config).points_to(v));
            budget.push(BudgetObservation {
                var: v,
                kind,
                lo,
                hi,
            });
        }
    }

    // Check 4 material: DYNSUM sessions (the engine with shared mutable
    // cache state — where thread-count nondeterminism would live).
    let dynsum_idx = EngineKind::ALL
        .iter()
        .position(|k| *k == EngineKind::DynSum)
        .unwrap();
    let sequential: Vec<u64> = queries
        .iter()
        .map(|q| q.engines[dynsum_idx].fingerprint)
        .collect();
    let batch: Vec<SessionQuery<'_>> = vars.iter().map(|&(v, _)| SessionQuery::new(v)).collect();
    let mut batches = Vec::new();
    for &threads in &opts.thread_counts {
        let mut session = Session::with_config(&w.pag, EngineKind::DynSum, *config);
        let results = session.run_batch(&batch, threads);
        batches.push(BatchObservation {
            threads,
            fingerprints: results.iter().map(QueryResult::fingerprint).collect(),
        });
    }

    // Check 5 material: a faulted batch plus clean follow-ups on the
    // same session, against a cold reference.
    let fault = opts
        .fault_seed
        .map(|seed| observe_faults(w, config, &batch, seed, opts));

    // Check 6 material: a seeded multi-client script against the daemon.
    let service = opts
        .service_seed
        .map(|seed| crate::service_fuzz::observe_service(w, config, seed));

    Observations {
        workload: w.name.clone(),
        context_sensitive: config.context_sensitive,
        queries,
        budget,
        sequential,
        batches,
        fault,
        service,
    }
}

/// Derives the deterministic [`FaultPlan`] for a fuzz case: per-query
/// rolls from the case's seed pick injected panics and cancel/deadline
/// fuses (roughly a quarter of the queries each, the rest run clean); a
/// spawn failure on the first chunk and a snapshot IO fault are always
/// injected. Public so reproducers replay the exact plan.
pub fn fault_plan_for(seed: u64, queries: usize) -> FaultPlan {
    let mut plan = FaultPlan {
        snapshot_io_after: Some(0),
        ..FaultPlan::default()
    };
    plan.fail_spawns.insert(0);
    for i in 0..queries {
        let roll = case_seed(seed ^ 0xFA17_FA17_FA17_FA17, i);
        match roll % 4 {
            0 => {
                plan.panic_queries.insert(i);
            }
            1 => {
                plan.cancel_after.insert(i, (roll >> 8) % 64);
            }
            2 => {
                plan.deadline_after.insert(i, (roll >> 8) % 64);
            }
            _ => {} // clean query
        }
    }
    plan
}

/// A `Write` sink that fails deterministically after a fixed number of
/// calls — the snapshot-IO half of the fault plan.
struct FailingWriter {
    calls: u64,
    fail_after: u64,
}

impl std::io::Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.calls >= self.fail_after {
            return Err(std::io::Error::other("injected IO fault"));
        }
        self.calls += 1;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the fault-injection observation: a cold reference batch, the
/// faulted batch (2 threads, so the spawn-failure and shard-discard
/// paths are exercised), a snapshot save through a failing writer, then
/// clean batches at every probed thread count on the *same* session.
fn observe_faults(
    w: &Workload,
    config: &EngineConfig,
    batch: &[SessionQuery<'_>],
    seed: u64,
    opts: &ObserveOptions,
) -> FaultObservation {
    let plan = fault_plan_for(seed, batch.len());

    // What every query answers on a session that never sees a fault.
    let mut reference_session = Session::with_config(&w.pag, EngineKind::DynSum, *config);
    let reference: Vec<u64> = reference_session
        .run_batch(batch, 1)
        .iter()
        .map(QueryResult::fingerprint)
        .collect();

    let control = BatchControl {
        faults: Some(plan.clone()),
        ..BatchControl::default()
    };
    let mut session = Session::with_config(&w.pag, EngineKind::DynSum, *config);
    let faulted = session.run_batch_with(batch, 2, &control);
    let faulted_tags = faulted.iter().map(|r| r.outcome.tag()).collect();
    let faulted_fingerprints = faulted.iter().map(QueryResult::fingerprint).collect();

    let snapshot_error_surfaced = match plan.snapshot_io_after {
        Some(fail_after) => {
            let mut sink = FailingWriter {
                calls: 0,
                fail_after,
            };
            session.save_snapshot(&mut sink).is_err()
        }
        // No snapshot fault injected: vacuously surfaced.
        None => true,
    };

    let after = opts
        .thread_counts
        .iter()
        .map(|&threads| BatchObservation {
            threads,
            fingerprints: session
                .run_batch(batch, threads)
                .iter()
                .map(QueryResult::fingerprint)
                .collect(),
        })
        .collect();

    FaultObservation {
        plan,
        reference,
        faulted_tags,
        faulted_fingerprints,
        snapshot_error_surfaced,
        after,
    }
}

fn subset(a: &BTreeSet<ObjId>, b: &BTreeSet<ObjId>) -> bool {
    a.is_subset(b)
}

/// Folds [`Observations`] into the list of invariant violations. Pure:
/// corrupting the observations and re-judging is how the harness's own
/// detection power is tested.
pub fn judge(obs: &Observations) -> Vec<Divergence> {
    let mut out = Vec::new();

    for q in &obs.queries {
        for e in &q.engines {
            // Check 1: soundness. Partial answers included — an engine
            // may under-approximate, never over-approximate.
            if !subset(&e.objects, &q.oracle) {
                let extra: Vec<ObjId> = e.objects.difference(&q.oracle).copied().collect();
                out.push(Divergence {
                    kind: DivergenceKind::Soundness,
                    engine: Some(e.kind),
                    var: Some(q.var),
                    detail: format!(
                        "{} answered {} objects not in the Andersen oracle ({:?}) at {}",
                        e.kind,
                        extra.len(),
                        extra,
                        q.label
                    ),
                });
            }
        }

        // Check 2: precision ordering.
        let resolved: Vec<&EngineObservation> = q.engines.iter().filter(|e| e.resolved).collect();
        if let Some(first) = resolved.first() {
            for e in resolved.iter().skip(1) {
                if e.objects != first.objects {
                    out.push(Divergence {
                        kind: DivergenceKind::Ordering,
                        engine: Some(e.kind),
                        var: Some(q.var),
                        detail: format!(
                            "resolved answers disagree: {} has {} objects, {} has {} at {}",
                            first.kind,
                            first.objects.len(),
                            e.kind,
                            e.objects.len(),
                            q.label
                        ),
                    });
                }
            }
            for e in q.engines.iter().filter(|e| !e.resolved) {
                if !subset(&e.objects, &first.objects) {
                    out.push(Divergence {
                        kind: DivergenceKind::Ordering,
                        engine: Some(e.kind),
                        var: Some(q.var),
                        detail: format!(
                            "partial {} answer exceeds resolved {} answer at {}",
                            e.kind, first.kind, q.label
                        ),
                    });
                }
            }
        }

        // Check 2b: with context sensitivity off, a resolved answer is
        // the `L_FT` relation — exactly Andersen (§3.2).
        if !obs.context_sensitive {
            for e in q.engines.iter().filter(|e| e.resolved) {
                if e.objects != q.oracle {
                    out.push(Divergence {
                        kind: DivergenceKind::OracleExact,
                        engine: Some(e.kind),
                        var: Some(q.var),
                        detail: format!(
                            "context-insensitive resolved answer ({} objects) != oracle ({}) at {}",
                            e.objects.len(),
                            q.oracle.len(),
                            q.label
                        ),
                    });
                }
            }
        }
    }

    // Check 3: budget monotonicity (prefix property of deterministic
    // cold traversal).
    for p in &obs.budget {
        if p.lo.resolved {
            if !p.hi.resolved || p.hi.objects != p.lo.objects {
                out.push(Divergence {
                    kind: DivergenceKind::Budget,
                    engine: Some(p.kind),
                    var: Some(p.var),
                    detail: format!(
                        "resolved at budget b ({} objects) but at 16b: resolved={}, {} objects",
                        p.lo.objects.len(),
                        p.hi.resolved,
                        p.hi.objects.len()
                    ),
                });
            }
        } else if !subset(&p.lo.objects, &p.hi.objects) {
            out.push(Divergence {
                kind: DivergenceKind::Budget,
                engine: Some(p.kind),
                var: Some(p.var),
                detail: "partial low-budget answer not a subset of the high-budget answer"
                    .to_owned(),
            });
        }
    }

    // Check 4: thread-count determinism + sequential identity.
    for b in &obs.batches {
        if b.fingerprints != obs.sequential {
            let first_bad = b
                .fingerprints
                .iter()
                .zip(&obs.sequential)
                .position(|(a, s)| a != s);
            out.push(Divergence {
                kind: DivergenceKind::Determinism,
                engine: Some(EngineKind::DynSum),
                var: first_bad.map(|i| obs.queries[i].var),
                detail: format!(
                    "run_batch({} threads) differs from sequential at query index {:?}",
                    b.threads, first_bad
                ),
            });
        }
    }

    // Check 5: fault integrity. Every injected fault surfaces in its
    // own query's outcome; nothing leaks into un-faulted queries or the
    // session's shared state.
    if let Some(f) = &obs.fault {
        judge_faults(obs, f, &mut out);
    }

    // Check 6: service identity. The daemon must be a byte-transparent
    // multiplexer over clean single-client sessions.
    if let Some(s) = &obs.service {
        for d in crate::service_fuzz::judge_service(s) {
            out.push(Divergence {
                kind: DivergenceKind::Service,
                engine: None,
                var: d.var,
                detail: d.detail,
            });
        }
    }

    out
}

/// The fault-integrity clauses of [`judge`], applied to one
/// [`FaultObservation`].
fn judge_faults(obs: &Observations, f: &FaultObservation, out: &mut Vec<Divergence>) {
    let mut push = |var: Option<VarId>, detail: String| {
        out.push(Divergence {
            kind: DivergenceKind::FaultIntegrity,
            engine: Some(EngineKind::DynSum),
            var,
            detail,
        });
    };

    for (i, (&tag, &print)) in f
        .faulted_tags
        .iter()
        .zip(&f.faulted_fingerprints)
        .enumerate()
    {
        let var = Some(obs.queries[i].var);
        if f.plan.panic_queries.contains(&i) {
            // An injected panic must be reported as exactly that — any
            // other outcome means the batch swallowed or misfiled it.
            if tag != Outcome::Panicked.tag() {
                push(
                    var,
                    format!("injected panic at query {i} reported outcome tag {tag}"),
                );
            }
        } else if f.plan.cancel_after.contains_key(&i) {
            // A fused query either trips its injected interruption or
            // finishes naturally first — in which case the answer must
            // be byte-identical to the clean reference.
            if tag != Outcome::Cancelled.tag() && print != f.reference[i] {
                push(
                    var,
                    format!("cancel-fused query {i} neither cancelled nor clean (tag {tag})"),
                );
            }
        } else if f.plan.deadline_after.contains_key(&i) {
            if tag != Outcome::DeadlineExceeded.tag() && print != f.reference[i] {
                push(
                    var,
                    format!("deadline-fused query {i} neither tripped nor clean (tag {tag})"),
                );
            }
        } else if print != f.reference[i] {
            // Faults were injected into *other* queries only; this one
            // must be untouched.
            push(
                var,
                format!("un-faulted query {i} differs from the clean cold reference"),
            );
        }
    }

    if !f.snapshot_error_surfaced {
        push(
            None,
            "injected snapshot IO fault did not surface as an error".to_owned(),
        );
    }

    // The integrity invariant proper: after any injected fault, the
    // session must be indistinguishable from one that never saw it.
    for b in &f.after {
        if b.fingerprints != f.reference {
            let first_bad = b
                .fingerprints
                .iter()
                .zip(&f.reference)
                .position(|(a, r)| a != r);
            push(
                first_bad.map(|i| obs.queries[i].var),
                format!(
                    "post-fault run_batch({} threads) differs from a clean cold session at query index {:?}",
                    b.threads, first_bad
                ),
            );
        }
    }
}

/// One divergence found by a fuzz run, with everything needed to
/// reproduce and reduce it.
#[derive(Debug, Clone)]
pub struct FoundDivergence {
    /// Fuzz regime name.
    pub profile: &'static str,
    /// Benchmark profile (workload shape).
    pub workload: String,
    /// Full generator options (including the derived seed).
    pub opts: GeneratorOptions,
    /// Engine configuration of the regime.
    pub config: EngineConfig,
    /// The violation.
    pub divergence: Divergence,
}

/// Summary of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Total query variables checked across all cases.
    pub queries: usize,
    /// Distinct benchmark profiles exercised.
    pub profiles_covered: BTreeSet<String>,
    /// Every divergence found (empty = clean run).
    pub divergences: Vec<FoundDivergence>,
}

/// Derives the per-case generator seed from the run's base seed. Public
/// so a reproducer can regenerate case *i* exactly.
pub fn case_seed(base_seed: u64, case: usize) -> u64 {
    // SplitMix64-style diffusion: adjacent cases get unrelated streams.
    let mut z = base_seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `(fuzz regime, benchmark profile, options)` triple for case `i`
/// of a run — the single source of truth shared by the fuzz loop and
/// reproducers.
pub fn case_plan(
    base_seed: u64,
    case: usize,
) -> (FuzzProfile, &'static BenchmarkProfile, GeneratorOptions) {
    let profiles = fuzz_profiles();
    let fp = profiles[case % profiles.len()].clone();
    let bench = &PROFILES[case % PROFILES.len()];
    let opts = GeneratorOptions {
        seed: case_seed(base_seed, case),
        ..fp.opts
    };
    (fp, bench, opts)
}

/// Runs `cases` fuzz cases from `base_seed`, invoking `progress` after
/// each case with `(index, divergences-so-far)`; returning `false`
/// stops the run early (the CLI's `--max-seconds` deadline).
///
/// # Errors
///
/// Propagates a [`GeneratorError`] only if a fuzz regime itself is
/// invalid (a harness bug — regime options are fixed, not fuzzed).
pub fn run_fuzz(
    cases: usize,
    base_seed: u64,
    observe_opts: &ObserveOptions,
    progress: impl FnMut(usize, usize) -> bool,
) -> Result<FuzzReport, GeneratorError> {
    run_fuzz_inner(cases, base_seed, observe_opts, None, progress)
}

/// [`run_fuzz`], but every case runs the single given regime instead of
/// rotating through [`fuzz_profiles`] (benchmark profiles and per-case
/// seeds still rotate as in [`case_plan`]). This is how `make
/// fuzz-faults` pins the CI gate to the `fault_injection` regime.
///
/// # Errors
///
/// Propagates a [`GeneratorError`] only if the regime itself is invalid
/// (a harness bug — regime options are fixed, not fuzzed).
pub fn run_fuzz_in_regime(
    cases: usize,
    base_seed: u64,
    observe_opts: &ObserveOptions,
    regime: &FuzzProfile,
    progress: impl FnMut(usize, usize) -> bool,
) -> Result<FuzzReport, GeneratorError> {
    run_fuzz_inner(cases, base_seed, observe_opts, Some(regime), progress)
}

fn run_fuzz_inner(
    cases: usize,
    base_seed: u64,
    observe_opts: &ObserveOptions,
    pinned: Option<&FuzzProfile>,
    mut progress: impl FnMut(usize, usize) -> bool,
) -> Result<FuzzReport, GeneratorError> {
    let mut report = FuzzReport::default();
    for i in 0..cases {
        let (fp, bench, opts) = match pinned {
            Some(p) => {
                let opts = GeneratorOptions {
                    seed: case_seed(base_seed, i),
                    ..p.opts
                };
                (p.clone(), &PROFILES[i % PROFILES.len()], opts)
            }
            None => case_plan(base_seed, i),
        };
        let w = try_generate(bench, &opts)?;
        let obs = observe(
            &w,
            &fp.config,
            &observe_opts_for(&fp, opts.seed, observe_opts),
        );
        report.cases += 1;
        report.queries += obs.queries.len();
        report.profiles_covered.insert(w.name.clone());
        for d in judge(&obs) {
            report.divergences.push(FoundDivergence {
                profile: fp.name,
                workload: w.name.clone(),
                opts,
                config: fp.config,
                divergence: d,
            });
        }
        if !progress(i, report.divergences.len()) {
            break;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    fn small_case() -> (Workload, EngineConfig) {
        let (fp, bench, opts) = case_plan(0xF0CC, 0);
        (generate(bench, &opts), fp.config)
    }

    #[test]
    fn observe_then_judge_is_clean_on_a_small_case() {
        let (w, config) = small_case();
        let obs = observe(&w, &config, &ObserveOptions::default());
        let divergences = judge(&obs);
        assert!(
            divergences.is_empty(),
            "unexpected divergences: {divergences:?}"
        );
        assert!(!obs.queries.is_empty());
        assert_eq!(obs.batches.len(), 3);
    }

    /// A clean observation fixture for the mutation tests below: each
    /// one seeds exactly one corruption into a copy and asserts the
    /// judge attributes it to the right invariant. This is the
    /// detection-power half of the observe/judge split — a judge that
    /// misses a seeded bug would silently pass every fuzz run.
    fn clean_obs() -> Observations {
        let (w, config) = small_case();
        let obs = observe(&w, &config, &ObserveOptions::default());
        assert!(judge(&obs).is_empty(), "mutation fixture must start clean");
        obs
    }

    #[test]
    fn judge_flags_a_seeded_soundness_violation() {
        let mut obs = clean_obs();
        // Invent a points-to relation: an object no oracle answer holds.
        let bogus = ObjId::from_raw(u32::MAX - 1);
        let culprit = obs.queries[0].engines[0].kind;
        obs.queries[0].engines[0].objects.insert(bogus);
        let ds = judge(&obs);
        assert!(
            ds.iter().any(|d| d.kind == DivergenceKind::Soundness
                && d.engine == Some(culprit)
                && d.var == Some(obs.queries[0].var)),
            "seeded superset not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_seeded_ordering_violation() {
        let mut obs = clean_obs();
        // Drop one object from a resolved engine's answer: still sound
        // (a subset of the oracle), but resolved answers now disagree.
        let q = obs
            .queries
            .iter_mut()
            .find(|q| q.engines.iter().all(|e| e.resolved) && !q.engines[1].objects.is_empty())
            .expect("fixture needs a fully resolved nonempty query");
        let victim = *q.engines[1].objects.iter().next().unwrap();
        q.engines[1].objects.remove(&victim);
        let culprit = q.engines[1].kind;
        let var = q.var;
        let ds = judge(&obs);
        assert!(
            ds.iter()
                .any(|d| d.kind == DivergenceKind::Ordering && d.engine == Some(culprit)),
            "seeded disagreement not flagged: {ds:?}"
        );
        assert!(
            !ds.iter()
                .any(|d| d.kind == DivergenceKind::Soundness && d.var == Some(var)),
            "removing an object must not read as a soundness bug"
        );
    }

    #[test]
    fn judge_flags_a_seeded_budget_violation() {
        let mut obs = clean_obs();
        // A query that resolved at budget b must stay resolved at 16b.
        let p = obs
            .budget
            .iter_mut()
            .find(|p| p.lo.resolved)
            .expect("fixture needs a resolved budget probe");
        p.hi.resolved = false;
        let culprit = p.kind;
        let ds = judge(&obs);
        assert!(
            ds.iter()
                .any(|d| d.kind == DivergenceKind::Budget && d.engine == Some(culprit)),
            "seeded resolution flip not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_seeded_determinism_violation() {
        let mut obs = clean_obs();
        // One bit of one batched result differing from the sequential
        // reference is the smallest possible nondeterminism.
        obs.batches[1].fingerprints[0] ^= 1;
        let ds = judge(&obs);
        let hit = ds
            .iter()
            .find(|d| d.kind == DivergenceKind::Determinism)
            .unwrap_or_else(|| panic!("seeded fingerprint flip not flagged: {ds:?}"));
        assert_eq!(hit.engine, Some(EngineKind::DynSum));
        assert_eq!(hit.var, Some(obs.queries[0].var));
    }

    #[test]
    fn case_seed_is_deterministic_and_spread() {
        assert_eq!(case_seed(1, 5), case_seed(1, 5));
        assert_ne!(case_seed(1, 5), case_seed(1, 6));
        assert_ne!(case_seed(1, 5), case_seed(2, 5));
    }

    #[test]
    fn fuzz_profiles_cover_the_advertised_regimes() {
        let ps = fuzz_profiles();
        assert!(ps.len() >= 7);
        assert!(ps.iter().any(|p| p.opts.recursion_bias > 0.0));
        assert!(ps.iter().any(|p| p.opts.field_chain > 0));
        assert!(ps.iter().any(|p| p.config.max_cached_summaries == Some(0)));
        assert!(ps.iter().any(|p| !p.config.context_sensitive));
        assert!(ps.iter().any(|p| p.inject_faults));
        assert!(ps.iter().any(|p| p.exercise_service));
        for p in &ps {
            assert!(
                p.config.deterministic_reuse,
                "{}: determinism check requires deterministic_reuse",
                p.name
            );
        }
    }

    /// A clean fault-injection fixture: same workload as [`clean_obs`],
    /// with check-5 material attached. Each mutation test below seeds
    /// one fault-integrity corruption and asserts the judge catches it.
    fn fault_obs() -> Observations {
        let (w, config) = small_case();
        let opts = ObserveOptions {
            fault_seed: Some(0xFA17),
            ..ObserveOptions::default()
        };
        let obs = observe(&w, &config, &opts);
        assert!(judge(&obs).is_empty(), "fault fixture must start clean");
        obs
    }

    #[test]
    fn fault_regime_is_clean_and_exercises_every_fault_kind() {
        let obs = fault_obs();
        let f = obs.fault.as_ref().expect("fault seed set");
        assert!(
            !f.plan.panic_queries.is_empty(),
            "plan must panic at least one query"
        );
        assert!(!f.plan.cancel_after.is_empty(), "plan must fuse a cancel");
        assert!(
            !f.plan.deadline_after.is_empty(),
            "plan must fuse a deadline"
        );
        assert!(f.snapshot_error_surfaced);
        assert_eq!(f.after.len(), 3);
        // At least one injected panic actually surfaced as Panicked.
        assert!(f
            .plan
            .panic_queries
            .iter()
            .all(|&i| f.faulted_tags[i] == Outcome::Panicked.tag()));
    }

    #[test]
    fn judge_flags_a_corrupted_post_fault_batch() {
        let mut obs = fault_obs();
        // The session keeping any trace of a fault is the invariant
        // violation the whole regime exists to catch.
        obs.fault.as_mut().unwrap().after[0].fingerprints[0] ^= 1;
        let ds = judge(&obs);
        assert!(
            ds.iter()
                .any(|d| d.kind == DivergenceKind::FaultIntegrity
                    && d.var == Some(obs.queries[0].var)),
            "seeded post-fault corruption not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_swallowed_injected_panic() {
        let mut obs = fault_obs();
        let f = obs.fault.as_mut().unwrap();
        let &i = f
            .plan
            .panic_queries
            .iter()
            .next()
            .expect("plan has a panic");
        // Pretend the batch absorbed the panic and answered normally.
        f.faulted_tags[i] = Outcome::Resolved.tag();
        f.faulted_fingerprints[i] = f.reference[i];
        let ds = judge(&obs);
        assert!(
            ds.iter().any(|d| d.kind == DivergenceKind::FaultIntegrity),
            "swallowed panic not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_fault_leakage_into_a_clean_query() {
        let mut obs = fault_obs();
        let f = obs.fault.as_mut().unwrap();
        let i = (0..f.faulted_fingerprints.len())
            .find(|i| {
                !f.plan.panic_queries.contains(i)
                    && !f.plan.cancel_after.contains_key(i)
                    && !f.plan.deadline_after.contains_key(i)
            })
            .expect("fixture needs an un-faulted query");
        f.faulted_fingerprints[i] ^= 1;
        let var = obs.queries[i].var;
        let ds = judge(&obs);
        assert!(
            ds.iter()
                .any(|d| d.kind == DivergenceKind::FaultIntegrity && d.var == Some(var)),
            "seeded leakage into a clean query not flagged: {ds:?}"
        );
    }

    #[test]
    fn judge_flags_a_lost_snapshot_io_error() {
        let mut obs = fault_obs();
        obs.fault.as_mut().unwrap().snapshot_error_surfaced = false;
        let ds = judge(&obs);
        assert!(
            ds.iter()
                .any(|d| d.kind == DivergenceKind::FaultIntegrity && d.detail.contains("snapshot")),
            "lost snapshot error not flagged: {ds:?}"
        );
    }

    #[test]
    fn service_regime_attaches_a_clean_observation() {
        let (w, config) = small_case();
        let service = fuzz_profiles()
            .into_iter()
            .find(|p| p.exercise_service)
            .expect("service regime exists");
        let opts = observe_opts_for(&service, 0x5EC7, &ObserveOptions::default());
        assert_eq!(opts.service_seed, Some(0x5EC7));
        let obs = observe(&w, &config, &opts);
        let s = obs.service.as_ref().expect("service seed set");
        assert!(s.replay_identical);
        assert!(!s.answers.is_empty());
        let ds = judge(&obs);
        assert!(ds.is_empty(), "unexpected divergences: {ds:?}");

        // Corrupting the service record must surface as a `service`
        // divergence through the top-level judge.
        let mut obs = obs;
        obs.service.as_mut().unwrap().replay_identical = false;
        let ds = judge(&obs);
        assert!(
            ds.iter().any(|d| d.kind == DivergenceKind::Service),
            "seeded service corruption not flagged: {ds:?}"
        );
    }

    #[test]
    fn fault_plan_is_deterministic() {
        assert_eq!(fault_plan_for(7, 20), fault_plan_for(7, 20));
        assert_ne!(fault_plan_for(7, 20), fault_plan_for(8, 20));
        assert!(fault_plan_for(7, 0).panic_queries.is_empty());
    }
}
