//! Property test: the text interchange format preserves arbitrary valid
//! PAGs exactly.

use dynsum_pag::text::{parse_pag, write_pag};
use dynsum_pag::{Pag, PagBuilder, VarId};
use proptest::prelude::*;

/// A generable graph shape (indices resolved modulo arena sizes).
#[derive(Debug, Clone)]
struct Spec {
    methods: usize,
    locals_per: usize,
    globals: usize,
    classes: usize,
    fields: usize,
    objs: Vec<(usize, usize, bool)>,
    assigns: Vec<(usize, usize, usize)>,
    loads: Vec<(usize, usize, usize, usize)>,
    stores: Vec<(usize, usize, usize, usize)>,
    gassigns: Vec<(bool, usize, usize, usize)>,
    calls: Vec<(usize, usize, usize, usize, usize, usize, bool)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let idx = 0usize..32;
    (
        (1usize..=4, 2usize..=4, 0usize..=3, 0usize..=3, 1usize..=3),
        proptest::collection::vec((idx.clone(), idx.clone(), any::<bool>()), 0..6),
        proptest::collection::vec((idx.clone(), idx.clone(), idx.clone()), 0..6),
        proptest::collection::vec((idx.clone(), idx.clone(), idx.clone(), idx.clone()), 0..5),
        proptest::collection::vec((idx.clone(), idx.clone(), idx.clone(), idx.clone()), 0..5),
        proptest::collection::vec((any::<bool>(), idx.clone(), idx.clone(), idx.clone()), 0..4),
        proptest::collection::vec(
            (
                idx.clone(),
                idx.clone(),
                idx.clone(),
                idx.clone(),
                idx.clone(),
                idx,
                any::<bool>(),
            ),
            0..4,
        ),
    )
        .prop_map(
            |(
                (methods, locals_per, globals, classes, fields),
                objs,
                assigns,
                loads,
                stores,
                gassigns,
                calls,
            )| Spec {
                methods,
                locals_per,
                globals,
                classes,
                fields,
                objs,
                assigns,
                loads,
                stores,
                gassigns,
                calls,
            },
        )
}

fn build(spec: &Spec) -> Pag {
    let mut b = PagBuilder::new();
    let mut classes = vec![b.hierarchy().root()];
    for c in 0..spec.classes {
        let parent = classes[c % classes.len()];
        classes.push(b.add_class(&format!("K{c}"), Some(parent)).unwrap());
    }
    let mut methods = Vec::new();
    let mut locals: Vec<Vec<VarId>> = Vec::new();
    for m in 0..spec.methods {
        let class = classes[m % classes.len()];
        let mid = b.add_method(&format!("m{m}"), Some(class)).unwrap();
        methods.push(mid);
        let mut ls = Vec::new();
        for l in 0..spec.locals_per {
            let ty = classes[(m + l) % classes.len()];
            ls.push(b.add_local(&format!("v_{m}_{l}"), mid, Some(ty)).unwrap());
        }
        locals.push(ls);
    }
    let mut globals = Vec::new();
    for g in 0..spec.globals {
        globals.push(b.add_global(&format!("g{g}"), None).unwrap());
    }
    let mut fields = Vec::new();
    for f in 0..spec.fields {
        fields.push(b.field(&format!("f{f}")));
    }
    for (i, &(m, l, is_null)) in spec.objs.iter().enumerate() {
        let m = m % spec.methods;
        let l = l % spec.locals_per;
        let o = if is_null {
            b.add_null_obj(&format!("n{i}"), Some(methods[m])).unwrap()
        } else {
            let class = classes[i % classes.len()];
            b.add_obj(&format!("o{i}"), Some(class), Some(methods[m]))
                .unwrap()
        };
        b.add_new(o, locals[m][l]).unwrap();
    }
    for &(m, s, d) in &spec.assigns {
        let m = m % spec.methods;
        let (s, d) = (s % spec.locals_per, d % spec.locals_per);
        if s != d {
            b.add_assign(locals[m][s], locals[m][d]).unwrap();
        }
    }
    for &(m, f, base, dst) in &spec.loads {
        let m = m % spec.methods;
        b.add_load(
            fields[f % spec.fields],
            locals[m][base % spec.locals_per],
            locals[m][dst % spec.locals_per],
        )
        .unwrap();
    }
    for &(m, f, src, base) in &spec.stores {
        let m = m % spec.methods;
        b.add_store(
            fields[f % spec.fields],
            locals[m][src % spec.locals_per],
            locals[m][base % spec.locals_per],
        )
        .unwrap();
    }
    for &(to_global, m, l, g) in &spec.gassigns {
        if spec.globals == 0 {
            continue;
        }
        let m = m % spec.methods;
        let l = locals[m][l % spec.locals_per];
        let g = globals[g % spec.globals];
        if to_global {
            b.add_assign(l, g).unwrap();
        } else {
            b.add_assign(g, l).unwrap();
        }
    }
    for (i, &(caller, callee, a, f, r, d, rec)) in spec.calls.iter().enumerate() {
        let caller = caller % spec.methods;
        let callee = callee % spec.methods;
        let site = b.add_call_site(&format!("cs{i}"), methods[caller]).unwrap();
        b.set_recursive(site, rec || caller == callee).unwrap();
        b.add_entry(
            site,
            locals[caller][a % spec.locals_per],
            locals[callee][f % spec.locals_per],
        )
        .unwrap();
        b.add_exit(
            site,
            locals[callee][r % spec.locals_per],
            locals[caller][d % spec.locals_per],
        )
        .unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn text_round_trip_is_lossless(spec in spec_strategy()) {
        let pag = build(&spec);
        prop_assert!(dynsum_pag::validate(&pag).is_empty());

        let text = write_pag(&pag);
        let back = parse_pag(&text).expect("generated text must parse");

        // Entity counts.
        prop_assert_eq!(back.num_vars(), pag.num_vars());
        prop_assert_eq!(back.num_objs(), pag.num_objs());
        prop_assert_eq!(back.num_methods(), pag.num_methods());
        prop_assert_eq!(back.num_call_sites(), pag.num_call_sites());
        prop_assert_eq!(back.num_fields(), pag.num_fields());
        prop_assert_eq!(back.hierarchy().len(), pag.hierarchy().len());

        // Edge multiset (by label triples, order-preserving here since
        // the writer emits insertion order).
        let render = |p: &Pag| -> Vec<String> {
            p.edges()
                .iter()
                .map(|e| {
                    format!(
                        "{}|{:?}|{}",
                        p.node_label(e.src),
                        e.kind.name(),
                        p.node_label(e.dst)
                    )
                })
                .collect()
        };
        prop_assert_eq!(render(&pag), render(&back));

        // Metadata: null flags, classes, recursion bits, declared types.
        for (o, info) in pag.objs() {
            let o2 = back.find_obj(&info.label).expect("object survives");
            prop_assert_eq!(back.obj(o2).is_null, info.is_null);
            let c1 = info.class.map(|c| pag.hierarchy().name(c).to_owned());
            let c2 = back.obj(o2).class.map(|c| back.hierarchy().name(c).to_owned());
            prop_assert_eq!(c1, c2);
            let _ = o;
        }
        for (s, info) in pag.call_sites() {
            let s2 = back.find_call_site(&info.label).expect("site survives");
            prop_assert_eq!(back.is_recursive_site(s2), pag.is_recursive_site(s));
        }
        for (v, info) in pag.vars() {
            let v2 = back.find_var(&info.name).expect("var survives");
            let t1 = info.declared_class.map(|c| pag.hierarchy().name(c).to_owned());
            let t2 = back
                .var(v2)
                .declared_class
                .map(|c| back.hierarchy().name(c).to_owned());
            prop_assert_eq!(t1, t2);
            let _ = v;
        }

        // Statistics (locality in particular) are identical.
        prop_assert_eq!(format!("{}", pag.stats()), format!("{}", back.stats()));

        // Idempotence: a second write is byte-identical.
        prop_assert_eq!(text, write_pag(&back));
    }
}
