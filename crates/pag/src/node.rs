//! PAG nodes: variables (locals and globals) and abstract heap objects.

use crate::ids::{ClassId, MethodId, ObjId, VarId};

/// Whether a variable is a method-local or a global (static field).
///
/// The distinction matters for context sensitivity (§2): globals are
/// context-insensitive, so assignments touching them become
/// `assignglobal` edges that clear the calling-context stack.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A local variable (or parameter, `this`, return-value temp) of the
    /// given method. The paper's node set `V`.
    Local(MethodId),
    /// A global variable (static field). The paper's node set `G`.
    Global,
}

impl VarKind {
    /// The owning method for locals, `None` for globals.
    #[inline]
    pub fn method(self) -> Option<MethodId> {
        match self {
            VarKind::Local(m) => Some(m),
            VarKind::Global => None,
        }
    }

    /// Returns `true` for globals.
    #[inline]
    pub fn is_global(self) -> bool {
        matches!(self, VarKind::Global)
    }
}

/// Metadata for a variable node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Source-level name; unique within the PAG (the paper assumes no two
    /// methods contain identically named locals, §2).
    pub name: String,
    /// Local-vs-global classification.
    pub kind: VarKind,
    /// Declared (static) type, if known. Used by clients for reporting.
    pub declared_class: Option<ClassId>,
}

/// Metadata for an abstract heap object (allocation site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjInfo {
    /// A label for printing, e.g. `o26` for the object allocated at line 26.
    pub label: String,
    /// Runtime class of instances allocated at this site, if known.
    pub class: Option<ClassId>,
    /// The method containing the allocation site, if any.
    pub alloc_method: Option<MethodId>,
    /// Marks the distinguished objects that model `null` assignments; the
    /// `NullDeref` client flags dereferences whose points-to sets contain
    /// such an object.
    pub is_null: bool,
}

/// Metadata for a method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodInfo {
    /// Name, unique within the PAG (qualified names like `Vector.add` are
    /// conventional).
    pub name: String,
    /// Declaring class, if any (`None` for synthetic or static-only
    /// methods in generated workloads).
    pub class: Option<ClassId>,
}

/// Metadata for a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSiteInfo {
    /// A label for printing, conventionally the source line (the paper's
    /// `i` in `entry_i`).
    pub label: String,
    /// The calling method containing this site.
    pub caller: MethodId,
    /// `true` when the call participates in a call-graph cycle. Entry and
    /// exit edges of recursive sites are traversed context-insensitively,
    /// matching the paper's treatment of recursion (§5.1: call-graph
    /// cycles are collapsed).
    pub recursive: bool,
}

/// A reference to a PAG node: either a variable or an object.
///
/// Inside the graph, nodes are packed into a dense [`NodeId`] space
/// (variables first, then objects) so adjacency can live in flat arrays;
/// `NodeRef` is the typed view used across the public API.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeRef {
    /// A variable node.
    Var(VarId),
    /// An object node.
    Obj(ObjId),
}

impl NodeRef {
    /// Returns the variable id if this is a variable node.
    #[inline]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            NodeRef::Var(v) => Some(v),
            NodeRef::Obj(_) => None,
        }
    }

    /// Returns the object id if this is an object node.
    #[inline]
    pub fn as_obj(self) -> Option<ObjId> {
        match self {
            NodeRef::Obj(o) => Some(o),
            NodeRef::Var(_) => None,
        }
    }
}

impl From<VarId> for NodeRef {
    fn from(v: VarId) -> Self {
        NodeRef::Var(v)
    }
}

impl From<ObjId> for NodeRef {
    fn from(o: ObjId) -> Self {
        NodeRef::Obj(o)
    }
}

impl std::fmt::Display for NodeRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeRef::Var(v) => write!(f, "{v}"),
            NodeRef::Obj(o) => write!(f, "{o}"),
        }
    }
}

/// A dense node index into the frozen graph: variables occupy
/// `0..num_vars`, objects `num_vars..num_vars + num_objs`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a raw dense index. Callers are expected to
    /// obtain raw indices from the owning [`Pag`](crate::Pag).
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_kind_accessors() {
        let m = MethodId::from_raw(3);
        assert_eq!(VarKind::Local(m).method(), Some(m));
        assert_eq!(VarKind::Global.method(), None);
        assert!(VarKind::Global.is_global());
        assert!(!VarKind::Local(m).is_global());
    }

    #[test]
    fn node_ref_conversions() {
        let v = VarId::from_raw(1);
        let o = ObjId::from_raw(2);
        assert_eq!(NodeRef::from(v).as_var(), Some(v));
        assert_eq!(NodeRef::from(v).as_obj(), None);
        assert_eq!(NodeRef::from(o).as_obj(), Some(o));
        assert_eq!(format!("{}", NodeRef::Var(v)), "var1");
        assert_eq!(format!("{}", NodeRef::Obj(o)), "obj2");
    }

    #[test]
    fn node_ids_are_ordered() {
        assert!(NodeId::from_raw(0) < NodeId::from_raw(1));
        assert_eq!(NodeId::from_raw(5).index(), 5);
    }
}
