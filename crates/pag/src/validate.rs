//! Structural validation of frozen PAGs.
//!
//! [`PagBuilder`](crate::PagBuilder) already enforces these invariants at
//! construction time; this module re-checks them on a frozen graph. It is
//! used by integration tests, by consumers of externally produced
//! text-format graphs, and as a debugging aid for the workload generator.

use std::collections::HashSet;

use crate::edge::EdgeKind;
use crate::graph::Pag;
use crate::node::{NodeId, NodeRef};

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A local edge whose endpoints are not locals of a single method.
    LocalEdgeCrossesMethods {
        /// Index of the edge in [`Pag::edges`].
        edge: usize,
    },
    /// A `new` edge whose source is not an object or destination not a
    /// variable.
    MalformedNewEdge {
        /// Index of the edge in [`Pag::edges`].
        edge: usize,
    },
    /// An object with more than one defining `new` edge.
    ObjectMultiplyDefined {
        /// The object's dense node id.
        node: NodeId,
    },
    /// An object appearing as the endpoint of a non-`new` edge.
    ObjectInNonNewEdge {
        /// Index of the edge in [`Pag::edges`].
        edge: usize,
    },
    /// An `entry`/`exit` edge whose caller-side endpoint is not a local of
    /// the site's calling method.
    CallEdgeWrongCaller {
        /// Index of the edge in [`Pag::edges`].
        edge: usize,
    },
    /// An `assign` edge (local kind) touching a global variable.
    GlobalOnLocalAssign {
        /// Index of the edge in [`Pag::edges`].
        edge: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::LocalEdgeCrossesMethods { edge } => {
                write!(f, "edge #{edge}: local edge crosses method boundary")
            }
            Violation::MalformedNewEdge { edge } => {
                write!(f, "edge #{edge}: malformed new edge")
            }
            Violation::ObjectMultiplyDefined { node } => {
                write!(f, "{node:?}: object has multiple defining new edges")
            }
            Violation::ObjectInNonNewEdge { edge } => {
                write!(f, "edge #{edge}: object endpoint on non-new edge")
            }
            Violation::CallEdgeWrongCaller { edge } => {
                write!(
                    f,
                    "edge #{edge}: caller-side variable not in calling method"
                )
            }
            Violation::GlobalOnLocalAssign { edge } => {
                write!(f, "edge #{edge}: local assign touches a global")
            }
        }
    }
}

/// Checks all structural invariants, returning every violation found.
///
/// An empty result means the graph satisfies the PAG well-formedness
/// assumptions the analyses rely on.
pub fn validate(pag: &Pag) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut defined: HashSet<NodeId> = HashSet::new();

    for (i, e) in pag.edges().iter().enumerate() {
        let src = pag.node_ref(e.src);
        let dst = pag.node_ref(e.dst);
        match e.kind {
            EdgeKind::New => match (src, dst) {
                (NodeRef::Obj(_), NodeRef::Var(v)) => {
                    if !defined.insert(e.src) {
                        out.push(Violation::ObjectMultiplyDefined { node: e.src });
                    }
                    let vm = pag.var(v).kind.method();
                    let om = pag.method_of(e.src);
                    if vm.is_none() || (om.is_some() && om != vm) {
                        out.push(Violation::LocalEdgeCrossesMethods { edge: i });
                    }
                }
                _ => out.push(Violation::MalformedNewEdge { edge: i }),
            },
            EdgeKind::Assign | EdgeKind::Load(_) | EdgeKind::Store(_) => match (src, dst) {
                (NodeRef::Var(s), NodeRef::Var(d)) => {
                    let ms = pag.var(s).kind.method();
                    let md = pag.var(d).kind.method();
                    if ms.is_none() || md.is_none() {
                        out.push(Violation::GlobalOnLocalAssign { edge: i });
                    } else if ms != md {
                        out.push(Violation::LocalEdgeCrossesMethods { edge: i });
                    }
                }
                _ => out.push(Violation::ObjectInNonNewEdge { edge: i }),
            },
            EdgeKind::AssignGlobal => {
                if src.as_var().is_none() || dst.as_var().is_none() {
                    out.push(Violation::ObjectInNonNewEdge { edge: i });
                }
            }
            EdgeKind::Entry(site) => match (src, dst) {
                (NodeRef::Var(a), NodeRef::Var(_)) => {
                    let caller = pag.call_site(site).caller;
                    if pag.var(a).kind.method() != Some(caller) {
                        out.push(Violation::CallEdgeWrongCaller { edge: i });
                    }
                }
                _ => out.push(Violation::ObjectInNonNewEdge { edge: i }),
            },
            EdgeKind::Exit(site) => match (src, dst) {
                (NodeRef::Var(_), NodeRef::Var(d)) => {
                    let caller = pag.call_site(site).caller;
                    if pag.var(d).kind.method() != Some(caller) {
                        out.push(Violation::CallEdgeWrongCaller { edge: i });
                    }
                }
                _ => out.push(Violation::ObjectInNonNewEdge { edge: i }),
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PagBuilder;

    #[test]
    fn builder_output_validates_clean() {
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m1, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        let o = b.add_obj("o1", None, Some(m1)).unwrap();
        let f = b.field("f");
        b.add_new(o, a).unwrap();
        b.add_assign(a, c).unwrap();
        b.add_load(f, a, c).unwrap();
        b.add_store(f, c, a).unwrap();
        b.add_assign(a, g).unwrap();
        let site = b.add_call_site("cs", m1).unwrap();
        b.add_entry(site, a, p).unwrap();
        b.add_exit(site, p, c).unwrap();
        assert!(validate(&b.finish()).is_empty());
    }

    #[test]
    fn violations_display() {
        let v = Violation::LocalEdgeCrossesMethods { edge: 3 };
        assert!(format!("{v}").contains("edge #3"));
    }
}
