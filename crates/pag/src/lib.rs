//! # dynsum-pag — Pointer Assignment Graphs
//!
//! The program representation of *On-Demand Dynamic Summary-based
//! Points-to Analysis* (Shang, Xie, Xue — CGO 2012), §2.
//!
//! A [`Pag`] is a directed graph whose nodes are local variables (`V`),
//! global variables (`G`) and abstract heap objects (`O`), and whose
//! edges are the seven pointer-manipulating statement kinds of Figure 1
//! (`new`, `assign`, `assignglobal`, `load(f)`, `store(f)`, `entry_i`,
//! `exit_i`), all oriented in the direction of value flow. The crate
//! provides:
//!
//! * dense-id arenas and an invariant-checking [`PagBuilder`];
//! * a sealed single-inheritance class [`Hierarchy`] with O(1) subtype
//!   tests (used by the `SafeCast` client and call resolution);
//! * precomputed bidirectional **kind-partitioned** adjacency plus the
//!   boundary-node bits the summarization algorithms need
//!   (`has_global_in` / `has_global_out`);
//! * [`PagStats`] — the Table 3 statistics (including the *locality*
//!   metric: the fraction of local edges);
//! * a line-oriented [text interchange format](crate::text) and
//!   [DOT export](crate::to_dot);
//! * structural [validation](crate::validate()).
//!
//! ## Performance architecture
//!
//! The demand-driven engines spend nearly all of their time iterating
//! adjacency, so the frozen graph's memory layout is organized around
//! that loop:
//!
//! * **Kind-partitioned CSR.** Each node's adjacency — in both value-flow
//!   directions — is one contiguous run of [`Adj`] entries, sorted by
//!   [`AdjClass`] (the seven [`EdgeKind`] constructors, local kinds
//!   first). A segment table of `num_nodes × 7 + 1` offsets addresses
//!   the run: [`Pag::out_seg`]`(n, k)` / [`Pag::in_seg`]`(n, k)` are two
//!   array reads and a slice. The RSM transition loops
//!   (`dynsum-core`'s search/PPTA/driver) therefore iterate exactly the
//!   kinds they handle as straight segment scans — no per-edge `match`,
//!   no branch misprediction on mixed kinds.
//! * **Inline payload.** An [`Adj`] entry carries the far endpoint, the
//!   kind operand (field or call site) and the [`EdgeId`] in 12 bytes,
//!   so traversal never dereferences the [`Edge`] arena; `edges()` /
//!   `edge()` remain for cold paths (stats, validation, export). The
//!   per-field [`FieldEdge`] lists ([`Pag::stores_of`] /
//!   [`Pag::loads_of`]) inline both endpoints for the same reason —
//!   REFINEPTS's match edges expand through them allocation-free.
//! * **Derived classification bits.** `has_global_in`/`has_global_out`/
//!   `has_local_edge` are range-emptiness checks on the segment table
//!   (the local classes are contiguous, as are the global ones), not
//!   separate bit vectors.
//! * **One build pass.** [`PagBuilder::finish`] counting-sorts edges by
//!   `(node, class)` in O(V·7 + E); the graph stays immutable
//!   afterwards, which is what makes the shared borrows of segments
//!   coexist with the engines' mutable traversal state.
//!
//! ## Quickstart
//!
//! ```
//! use dynsum_pag::PagBuilder;
//!
//! // v = new O(); w = v;
//! let mut b = PagBuilder::new();
//! let m = b.add_method("main", None)?;
//! let v = b.add_local("v", m, None)?;
//! let w = b.add_local("w", m, None)?;
//! let o = b.add_obj("o1", None, Some(m))?;
//! b.add_new(o, v)?;
//! b.add_assign(v, w)?;
//! let pag = b.finish();
//!
//! assert_eq!(pag.stats().local_edges(), 2);
//! assert!((pag.stats().locality() - 1.0).abs() < f64::EPSILON);
//! # Ok::<(), dynsum_pag::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dot;
mod edge;
mod graph;
mod ids;
mod meta;
mod node;
mod stats;
pub mod text;
mod types;
mod validate;

pub use builder::{BuildError, PagBuilder};
pub use dot::to_dot;
pub use edge::{Adj, AdjClass, Edge, EdgeId, EdgeKind, FieldEdge};
pub use graph::Pag;
pub use ids::{CallSiteId, ClassId, FieldId, MethodId, ObjId, VarId};
pub use meta::{CastSite, DerefSite, FactoryCandidate, ProgramInfo};
pub use node::{CallSiteInfo, MethodInfo, NodeId, NodeRef, ObjInfo, VarInfo, VarKind};
pub use stats::PagStats;
pub use types::{ClassInfo, Hierarchy, HierarchyError};
pub use validate::{validate, Violation};
