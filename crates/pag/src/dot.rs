//! Graphviz (DOT) export, rendering PAGs in the style of the paper's
//! Figure 2: local edges clustered per method, global edges spanning
//! clusters.

use std::fmt::Write as _;

use crate::edge::EdgeKind;
use crate::graph::Pag;
use crate::node::{NodeId, NodeRef};

/// Renders a PAG to DOT.
///
/// Nodes are grouped into one `cluster_*` subgraph per method (objects
/// under their allocating method), with globals and method-less objects at
/// the top level. Local edges are solid, global edges dashed — matching
/// the visual language of Figure 2.
///
/// # Examples
///
/// ```
/// use dynsum_pag::{PagBuilder, to_dot};
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let dot = to_dot(&b.finish());
/// assert!(dot.contains("digraph pag"));
/// assert!(dot.contains("cluster_m0"));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
pub fn to_dot(pag: &Pag) -> String {
    let mut out = String::new();
    out.push_str("digraph pag {\n  rankdir=BT;\n  node [fontsize=10];\n");

    let node_name = |n: NodeId| -> String {
        match pag.node_ref(n) {
            NodeRef::Var(v) => format!("v{}", v.as_raw()),
            NodeRef::Obj(o) => format!("o{}", o.as_raw()),
        }
    };

    // Method clusters.
    for (m, info) in pag.methods() {
        let _ = writeln!(out, "  subgraph cluster_m{} {{", m.as_raw());
        let _ = writeln!(out, "    label=\"{}\";", info.name);
        out.push_str("    style=dotted;\n");
        for &v in pag.locals_of(m) {
            let n = pag.var_node(v);
            let _ = writeln!(
                out,
                "    {} [label=\"{}\" shape=ellipse];",
                node_name(n),
                pag.var(v).name
            );
        }
        for &o in pag.objs_of(m) {
            let n = pag.obj_node(o);
            let shape = if pag.obj(o).is_null { "diamond" } else { "box" };
            let _ = writeln!(
                out,
                "    {} [label=\"{}\" shape={shape}];",
                node_name(n),
                pag.obj(o).label
            );
        }
        out.push_str("  }\n");
    }

    // Globals and unowned objects at top level.
    for (v, info) in pag.vars() {
        if info.kind.is_global() {
            let _ = writeln!(
                out,
                "  {} [label=\"{}\" shape=ellipse style=bold];",
                node_name(pag.var_node(v)),
                info.name
            );
        }
    }
    for (o, info) in pag.objs() {
        if info.alloc_method.is_none() {
            let _ = writeln!(
                out,
                "  {} [label=\"{}\" shape=box];",
                node_name(pag.obj_node(o)),
                info.label
            );
        }
    }

    for e in pag.edges() {
        let label = match e.kind {
            EdgeKind::New => "new".to_owned(),
            EdgeKind::Assign => "assign".to_owned(),
            EdgeKind::AssignGlobal => "assignglobal".to_owned(),
            EdgeKind::Load(f) => format!("ld({})", pag.field_name(f)),
            EdgeKind::Store(f) => format!("st({})", pag.field_name(f)),
            EdgeKind::Entry(s) => format!("entry{}", pag.call_site(s).label),
            EdgeKind::Exit(s) => format!("exit{}", pag.call_site(s).label),
        };
        let style = if e.kind.is_global() {
            " style=dashed"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{label}\"{style}];",
            node_name(e.src),
            node_name(e.dst)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PagBuilder;

    #[test]
    fn renders_clusters_and_edge_styles() {
        let mut b = PagBuilder::new();
        let m1 = b.add_method("caller", None).unwrap();
        let m2 = b.add_method("callee", None).unwrap();
        let a = b.add_local("a", m1, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        let o = b.add_obj("o1", None, Some(m1)).unwrap();
        b.add_new(o, a).unwrap();
        b.add_assign(a, g).unwrap();
        let site = b.add_call_site("1", m1).unwrap();
        b.add_entry(site, a, p).unwrap();
        let dot = to_dot(&b.finish());
        assert!(dot.contains("cluster_m0"));
        assert!(dot.contains("cluster_m1"));
        assert!(dot.contains("entry1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"new\""));
        assert!(dot.contains("label=\"G\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn null_objects_render_as_diamonds() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let n = b.add_null_obj("null1", Some(m)).unwrap();
        b.add_new(n, v).unwrap();
        let dot = to_dot(&b.finish());
        assert!(dot.contains("shape=diamond"));
    }
}
