//! Dense integer identifiers for every PAG entity.
//!
//! All graph entities (classes, fields, methods, variables, abstract objects,
//! call sites) are identified by `u32` newtypes indexing into arenas owned by
//! the [`Pag`](crate::Pag). This keeps edges at 12 bytes, makes the whole
//! graph trivially serializable, and gives cache-friendly traversal.

use std::fmt;

/// Implements a `u32` newtype identifier with the common trait surface.
macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn as_raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for arena indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type! {
    /// A class in the (single-inheritance) class hierarchy.
    ClassId, "class"
}
id_type! {
    /// An instance field name (`f` in `load(f)` / `store(f)` edge labels).
    ///
    /// Array elements are collapsed into the distinguished field
    /// [`Pag::ARRAY_FIELD_NAME`](crate::Pag::ARRAY_FIELD_NAME), as in the
    /// paper (§2).
    FieldId, "field"
}
id_type! {
    /// A method. Local variables, allocation sites and the four *local* edge
    /// kinds (`new`, `assign`, `load`, `store`) each belong to exactly one
    /// method.
    MethodId, "method"
}
id_type! {
    /// A variable node: either a method-local variable or a global (static
    /// field). The paper's node sets `V` (locals) and `G` (globals).
    VarId, "var"
}
id_type! {
    /// An abstract heap object, identified by its allocation site. The
    /// paper's node set `O`.
    ObjId, "obj"
}
id_type! {
    /// A call site (`i` in `entry_i` / `exit_i` edge labels).
    CallSiteId, "site"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_raw_values() {
        let v = VarId::from_raw(42);
        assert_eq!(v.as_raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
    }

    #[test]
    fn debug_and_display_are_prefixed() {
        assert_eq!(format!("{:?}", ObjId::from_raw(7)), "obj7");
        assert_eq!(format!("{}", ClassId::from_raw(0)), "class0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(MethodId::from_raw(1) < MethodId::from_raw(2));
        assert_eq!(CallSiteId::from_raw(3), CallSiteId::from_raw(3));
    }
}
