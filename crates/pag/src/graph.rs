//! The frozen Pointer Assignment Graph.

use std::collections::HashMap;

use crate::edge::{Adj, AdjClass, Edge, EdgeId, EdgeKind, FieldEdge};
use crate::ids::{CallSiteId, FieldId, MethodId, ObjId, VarId};
use crate::node::{CallSiteInfo, MethodInfo, NodeId, NodeRef, ObjInfo, VarInfo};
use crate::stats::PagStats;
use crate::types::Hierarchy;

/// An immutable Pointer Assignment Graph (§2, Figure 1).
///
/// Build one with [`PagBuilder`](crate::PagBuilder), by parsing the
/// [text format](crate::text), or via the `dynsum-frontend` /
/// `dynsum-workloads` crates. Nodes are variables and abstract objects;
/// edges are the seven statement kinds of [`EdgeKind`], stored once in
/// value-flow orientation with both adjacency directions precomputed
/// (demand-driven CFL-reachability walks the graph both ways).
///
/// # Examples
///
/// ```
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
/// assert_eq!(pag.num_vars(), 1);
/// assert_eq!(pag.num_objs(), 1);
/// assert_eq!(pag.num_edges(), 1);
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pag {
    pub(crate) hierarchy: Hierarchy,
    pub(crate) fields: Vec<String>,
    pub(crate) methods: Vec<MethodInfo>,
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) objs: Vec<ObjInfo>,
    pub(crate) call_sites: Vec<CallSiteInfo>,
    pub(crate) edges: Vec<Edge>,

    // Kind-partitioned CSR adjacency over the dense node space (vars then
    // objects): node `n`'s out-adjacency of class `k` is
    // `out_list[out_seg[n*7+k] .. out_seg[n*7+k+1]]`, with the edge
    // payload (far endpoint + operand) inline in the `Adj` entries. The
    // segment tables double as the per-node classification bits
    // (`has_global_in` etc. are range-emptiness checks).
    out_seg: Vec<u32>,
    out_list: Vec<Adj>,
    in_seg: Vec<u32>,
    in_list: Vec<Adj>,

    // Field-indexed store/load edge lists with endpoints inline
    // (REFINEPTS pairs loads with all stores of the same field).
    stores_by_field: Vec<Vec<FieldEdge>>,
    loads_by_field: Vec<Vec<FieldEdge>>,

    // Grouping of locals / allocation sites per method.
    method_locals: Vec<Vec<VarId>>,
    method_objs: Vec<Vec<ObjId>>,

    // Name lookup tables.
    var_names: HashMap<String, VarId>,
    method_names: HashMap<String, MethodId>,
    field_names: HashMap<String, FieldId>,
    obj_labels: HashMap<String, ObjId>,
    site_labels: HashMap<String, CallSiteId>,
}

impl Pag {
    /// The distinguished field name into which all array elements are
    /// collapsed (§2).
    pub const ARRAY_FIELD_NAME: &'static str = "arr";

    // ---- sizes -----------------------------------------------------------

    /// Number of variable nodes (locals + globals).
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of abstract object nodes.
    #[inline]
    pub fn num_objs(&self) -> usize {
        self.objs.len()
    }

    /// Total number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.vars.len() + self.objs.len()
    }

    /// Total number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of methods.
    #[inline]
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Number of interned fields.
    #[inline]
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Number of call sites.
    #[inline]
    pub fn num_call_sites(&self) -> usize {
        self.call_sites.len()
    }

    // ---- node id packing --------------------------------------------------

    /// Dense node id of a variable.
    #[inline]
    pub fn var_node(&self, v: VarId) -> NodeId {
        debug_assert!(v.index() < self.vars.len());
        NodeId(v.as_raw())
    }

    /// Dense node id of an object.
    #[inline]
    pub fn obj_node(&self, o: ObjId) -> NodeId {
        debug_assert!(o.index() < self.objs.len());
        NodeId(self.vars.len() as u32 + o.as_raw())
    }

    /// Dense node id of any node reference.
    #[inline]
    pub fn node(&self, r: NodeRef) -> NodeId {
        match r {
            NodeRef::Var(v) => self.var_node(v),
            NodeRef::Obj(o) => self.obj_node(o),
        }
    }

    /// Typed view of a dense node id.
    #[inline]
    pub fn node_ref(&self, n: NodeId) -> NodeRef {
        let nv = self.vars.len() as u32;
        if n.0 < nv {
            NodeRef::Var(VarId::from_raw(n.0))
        } else {
            NodeRef::Obj(ObjId::from_raw(n.0 - nv))
        }
    }

    /// Iterates over all dense node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    // ---- adjacency ---------------------------------------------------------

    /// The edge behind an [`EdgeId`].
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// All edges, in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    #[inline]
    fn seg_slice<'a>(seg: &[u32], list: &'a [Adj], n: NodeId, lo: usize, hi: usize) -> &'a [Adj] {
        let base = n.index() * AdjClass::COUNT;
        &list[seg[base + lo] as usize..seg[base + hi] as usize]
    }

    /// Out-adjacency of `n` of one kind class (value flows out of `n`;
    /// entries carry the destination).
    #[inline]
    pub fn out_seg(&self, n: NodeId, k: AdjClass) -> &[Adj] {
        Self::seg_slice(&self.out_seg, &self.out_list, n, k as usize, k as usize + 1)
    }

    /// In-adjacency of `n` of one kind class (value flows into `n`;
    /// entries carry the source).
    #[inline]
    pub fn in_seg(&self, n: NodeId, k: AdjClass) -> &[Adj] {
        Self::seg_slice(&self.in_seg, &self.in_list, n, k as usize, k as usize + 1)
    }

    /// All out-adjacency entries of `n`, sorted by kind class.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[Adj] {
        Self::seg_slice(&self.out_seg, &self.out_list, n, 0, AdjClass::COUNT)
    }

    /// All in-adjacency entries of `n`, sorted by kind class.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[Adj] {
        Self::seg_slice(&self.in_seg, &self.in_list, n, 0, AdjClass::COUNT)
    }

    /// `true` if some global edge flows *into* `n` — the S1 boundary test
    /// of Algorithm 3 (line 15). A range-emptiness check on the segment
    /// table (the global classes are contiguous).
    #[inline]
    pub fn has_global_in(&self, n: NodeId) -> bool {
        let base = n.index() * AdjClass::COUNT;
        self.in_seg[base + AdjClass::LOCAL_END] != self.in_seg[base + AdjClass::COUNT]
    }

    /// `true` if some global edge flows *out of* `n` — the S2 boundary
    /// test of Algorithm 3 (line 28).
    #[inline]
    pub fn has_global_out(&self, n: NodeId) -> bool {
        let base = n.index() * AdjClass::COUNT;
        self.out_seg[base + AdjClass::LOCAL_END] != self.out_seg[base + AdjClass::COUNT]
    }

    /// `true` if any local edge touches `n`; when false, the DYNSUM driver
    /// skips the partial points-to analysis entirely (§4.3).
    #[inline]
    pub fn has_local_edge(&self, n: NodeId) -> bool {
        let base = n.index() * AdjClass::COUNT;
        self.out_seg[base] != self.out_seg[base + AdjClass::LOCAL_END]
            || self.in_seg[base] != self.in_seg[base + AdjClass::LOCAL_END]
    }

    /// All `store(f)` edges for a field, across the whole graph.
    #[inline]
    pub fn stores_of(&self, f: FieldId) -> &[FieldEdge] {
        &self.stores_by_field[f.index()]
    }

    /// All `load(f)` edges for a field, across the whole graph.
    #[inline]
    pub fn loads_of(&self, f: FieldId) -> &[FieldEdge] {
        &self.loads_by_field[f.index()]
    }

    // ---- metadata ----------------------------------------------------------

    /// The class hierarchy (sealed).
    #[inline]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Metadata for a variable.
    #[inline]
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Metadata for an object.
    #[inline]
    pub fn obj(&self, o: ObjId) -> &ObjInfo {
        &self.objs[o.index()]
    }

    /// Metadata for a method.
    #[inline]
    pub fn method(&self, m: MethodId) -> &MethodInfo {
        &self.methods[m.index()]
    }

    /// Metadata for a call site.
    #[inline]
    pub fn call_site(&self, s: CallSiteId) -> &CallSiteInfo {
        &self.call_sites[s.index()]
    }

    /// Name of a field.
    #[inline]
    pub fn field_name(&self, f: FieldId) -> &str {
        &self.fields[f.index()]
    }

    /// `true` when the call site participates in a call-graph cycle; its
    /// entry/exit edges are then traversed context-insensitively.
    #[inline]
    pub fn is_recursive_site(&self, s: CallSiteId) -> bool {
        self.call_sites[s.index()].recursive
    }

    /// The method owning a node: the declaring method for locals and the
    /// allocating method for objects; `None` for globals and method-less
    /// objects.
    pub fn method_of(&self, n: NodeId) -> Option<MethodId> {
        match self.node_ref(n) {
            NodeRef::Var(v) => self.vars[v.index()].kind.method(),
            NodeRef::Obj(o) => self.objs[o.index()].alloc_method,
        }
    }

    /// Local variables of a method.
    #[inline]
    pub fn locals_of(&self, m: MethodId) -> &[VarId] {
        &self.method_locals[m.index()]
    }

    /// Allocation sites inside a method.
    #[inline]
    pub fn objs_of(&self, m: MethodId) -> &[ObjId] {
        &self.method_objs[m.index()]
    }

    /// Iterates over all variables with their ids.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId::from_raw(i as u32), v))
    }

    /// Iterates over all objects with their ids.
    pub fn objs(&self) -> impl Iterator<Item = (ObjId, &ObjInfo)> {
        self.objs
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId::from_raw(i as u32), o))
    }

    /// Iterates over all methods with their ids.
    pub fn methods(&self) -> impl Iterator<Item = (MethodId, &MethodInfo)> {
        self.methods
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId::from_raw(i as u32), m))
    }

    /// Iterates over all call sites with their ids.
    pub fn call_sites(&self) -> impl Iterator<Item = (CallSiteId, &CallSiteInfo)> {
        self.call_sites
            .iter()
            .enumerate()
            .map(|(i, s)| (CallSiteId::from_raw(i as u32), s))
    }

    /// Iterates over all fields with their ids.
    pub fn fields(&self) -> impl Iterator<Item = (FieldId, &str)> {
        self.fields
            .iter()
            .enumerate()
            .map(|(i, f)| (FieldId::from_raw(i as u32), f.as_str()))
    }

    // ---- name lookup -------------------------------------------------------

    /// Looks up a variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.var_names.get(name).copied()
    }

    /// Looks up a method by name.
    pub fn find_method(&self, name: &str) -> Option<MethodId> {
        self.method_names.get(name).copied()
    }

    /// Looks up a field by name.
    pub fn find_field(&self, name: &str) -> Option<FieldId> {
        self.field_names.get(name).copied()
    }

    /// Looks up an object by label.
    pub fn find_obj(&self, label: &str) -> Option<ObjId> {
        self.obj_labels.get(label).copied()
    }

    /// Looks up a call site by label.
    pub fn find_call_site(&self, label: &str) -> Option<CallSiteId> {
        self.site_labels.get(label).copied()
    }

    /// Human-readable label of a node (variable name or object label).
    pub fn node_label(&self, n: NodeId) -> &str {
        match self.node_ref(n) {
            NodeRef::Var(v) => &self.vars[v.index()].name,
            NodeRef::Obj(o) => &self.objs[o.index()].label,
        }
    }

    // ---- statistics --------------------------------------------------------

    /// Computes the Table 3 statistics row for this graph.
    pub fn stats(&self) -> PagStats {
        PagStats::of(self)
    }

    // ---- construction (crate-internal) --------------------------------------

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        hierarchy: Hierarchy,
        fields: Vec<String>,
        methods: Vec<MethodInfo>,
        vars: Vec<VarInfo>,
        objs: Vec<ObjInfo>,
        call_sites: Vec<CallSiteInfo>,
        edges: Vec<Edge>,
    ) -> Pag {
        let num_nodes = vars.len() + objs.len();
        const K: usize = AdjClass::COUNT;

        // Counting-sort edges into kind-partitioned CSR form, both
        // directions: one segment per (node, kind class), local classes
        // first.
        let operand_of = |kind: EdgeKind| -> u32 {
            match kind {
                EdgeKind::Load(f) | EdgeKind::Store(f) => f.as_raw(),
                EdgeKind::Entry(i) | EdgeKind::Exit(i) => i.as_raw(),
                EdgeKind::New | EdgeKind::Assign | EdgeKind::AssignGlobal => 0,
            }
        };
        let mut out_seg = vec![0u32; num_nodes * K + 1];
        let mut in_seg = vec![0u32; num_nodes * K + 1];
        for e in &edges {
            let k = AdjClass::of(e.kind) as usize;
            out_seg[e.src.index() * K + k + 1] += 1;
            in_seg[e.dst.index() * K + k + 1] += 1;
        }
        for i in 0..num_nodes * K {
            out_seg[i + 1] += out_seg[i];
            in_seg[i + 1] += in_seg[i];
        }
        let nil = Adj {
            node: NodeId(0),
            operand: 0,
            edge: EdgeId(0),
        };
        let mut out_list = vec![nil; edges.len()];
        let mut in_list = vec![nil; edges.len()];
        let mut out_cursor = out_seg.clone();
        let mut in_cursor = in_seg.clone();
        for (i, e) in edges.iter().enumerate() {
            let edge = EdgeId(i as u32);
            let operand = operand_of(e.kind);
            let k = AdjClass::of(e.kind) as usize;
            let oc = &mut out_cursor[e.src.index() * K + k];
            out_list[*oc as usize] = Adj {
                node: e.dst,
                operand,
                edge,
            };
            *oc += 1;
            let ic = &mut in_cursor[e.dst.index() * K + k];
            in_list[*ic as usize] = Adj {
                node: e.src,
                operand,
                edge,
            };
            *ic += 1;
        }

        let mut stores_by_field = vec![Vec::new(); fields.len()];
        let mut loads_by_field = vec![Vec::new(); fields.len()];
        for (i, e) in edges.iter().enumerate() {
            let fe = FieldEdge {
                src: e.src,
                dst: e.dst,
                edge: EdgeId(i as u32),
            };
            match e.kind {
                EdgeKind::Store(f) => stores_by_field[f.index()].push(fe),
                EdgeKind::Load(f) => loads_by_field[f.index()].push(fe),
                _ => {}
            }
        }

        let mut method_locals = vec![Vec::new(); methods.len()];
        for (i, v) in vars.iter().enumerate() {
            if let Some(m) = v.kind.method() {
                method_locals[m.index()].push(VarId::from_raw(i as u32));
            }
        }
        let mut method_objs = vec![Vec::new(); methods.len()];
        for (i, o) in objs.iter().enumerate() {
            if let Some(m) = o.alloc_method {
                method_objs[m.index()].push(ObjId::from_raw(i as u32));
            }
        }

        let var_names = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.clone(), VarId::from_raw(i as u32)))
            .collect();
        let method_names = methods
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), MethodId::from_raw(i as u32)))
            .collect();
        let field_names = fields
            .iter()
            .enumerate()
            .map(|(i, f)| (f.clone(), FieldId::from_raw(i as u32)))
            .collect();
        let obj_labels = objs
            .iter()
            .enumerate()
            .map(|(i, o)| (o.label.clone(), ObjId::from_raw(i as u32)))
            .collect();
        let site_labels = call_sites
            .iter()
            .enumerate()
            .map(|(i, s)| (s.label.clone(), CallSiteId::from_raw(i as u32)))
            .collect();

        Pag {
            hierarchy,
            fields,
            methods,
            vars,
            objs,
            call_sites,
            edges,
            out_seg,
            out_list,
            in_seg,
            in_list,
            stores_by_field,
            loads_by_field,
            method_locals,
            method_objs,
            var_names,
            method_names,
            field_names,
            obj_labels,
            site_labels,
        }
    }
}
