//! PAG edges: the seven statement kinds of Figure 1.
//!
//! Every edge is oriented in the direction of **value flow**:
//!
//! | statement              | edge                              |
//! |------------------------|-----------------------------------|
//! | `v = new O`            | `o --new--> v`                    |
//! | `v2 = v1` (locals)     | `v1 --assign--> v2`               |
//! | `v2 = v1` (any global) | `v1 --assignglobal--> v2`         |
//! | `v2 = v1.f`            | `v1 --load(f)--> v2` (base → dst) |
//! | `v2.f = v1`            | `v1 --store(f)--> v2` (src → base)|
//! | actual → formal at `i` | `a --entry_i--> p`                |
//! | return at `i`          | `r --exit_i--> d`                 |
//!
//! The demand-driven analyses traverse these edges both forwards
//! (`flowsTo` direction) and backwards (`pointsTo`/`flowsTo-bar`
//! direction); the graph stores both adjacency directions.

use crate::ids::{CallSiteId, FieldId};
use crate::node::NodeId;

/// The label of a PAG edge.
///
/// The first four kinds are **local** edges (intra-method, no effect on the
/// calling context); the last three are **global** edges (no effect on
/// field-sensitivity). This split is the foundation of the paper's partial
/// points-to analysis (§4).
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Allocation: object flows into its defining variable.
    New,
    /// Local assignment between two locals of the same method.
    Assign,
    /// Field load: base flows to destination under `load(f)`.
    Load(FieldId),
    /// Field store: source value flows to base under `store(f)`.
    Store(FieldId),
    /// Assignment where at least one side is a global variable;
    /// context-insensitive (clears the context stack).
    AssignGlobal,
    /// Parameter passing: actual argument to formal parameter at site `i`.
    Entry(CallSiteId),
    /// Method return: returned local to caller-side destination at site
    /// `i`.
    Exit(CallSiteId),
}

impl EdgeKind {
    /// `true` for the four local (intra-method) kinds.
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(
            self,
            EdgeKind::New | EdgeKind::Assign | EdgeKind::Load(_) | EdgeKind::Store(_)
        )
    }

    /// `true` for the three global kinds.
    #[inline]
    pub fn is_global(self) -> bool {
        !self.is_local()
    }

    /// The field label for loads and stores.
    #[inline]
    pub fn field(self) -> Option<FieldId> {
        match self {
            EdgeKind::Load(f) | EdgeKind::Store(f) => Some(f),
            _ => None,
        }
    }

    /// The call site for entry and exit edges.
    #[inline]
    pub fn call_site(self) -> Option<CallSiteId> {
        match self {
            EdgeKind::Entry(i) | EdgeKind::Exit(i) => Some(i),
            _ => None,
        }
    }

    /// Short name used by the text format and statistics.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::New => "new",
            EdgeKind::Assign => "assign",
            EdgeKind::Load(_) => "load",
            EdgeKind::Store(_) => "store",
            EdgeKind::AssignGlobal => "assignglobal",
            EdgeKind::Entry(_) => "entry",
            EdgeKind::Exit(_) => "exit",
        }
    }
}

/// One edge of the PAG, in value-flow orientation.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source node (value producer).
    pub src: NodeId,
    /// Destination node (value consumer).
    pub dst: NodeId,
    /// Statement label.
    pub kind: EdgeKind,
}

/// The segment class of an adjacency entry: one per [`EdgeKind`]
/// constructor, with the **local** classes first so locality checks are
/// single range comparisons on the segment table.
///
/// The frozen [`Pag`](crate::Pag) stores each node's adjacency sorted by
/// this class, so the traversal engines iterate exactly the kinds they
/// handle — no per-edge `match` in the inner loops.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
pub enum AdjClass {
    /// `new` edges.
    New = 0,
    /// Local `assign` edges.
    Assign = 1,
    /// `load(f)` edges.
    Load = 2,
    /// `store(f)` edges.
    Store = 3,
    /// `assignglobal` edges.
    AssignGlobal = 4,
    /// `entry_i` edges.
    Entry = 5,
    /// `exit_i` edges.
    Exit = 6,
}

impl AdjClass {
    /// Number of classes (segments per node and direction).
    pub const COUNT: usize = 7;

    /// All classes, in segment storage order.
    pub const ALL: [AdjClass; AdjClass::COUNT] = [
        AdjClass::New,
        AdjClass::Assign,
        AdjClass::Load,
        AdjClass::Store,
        AdjClass::AssignGlobal,
        AdjClass::Entry,
        AdjClass::Exit,
    ];

    /// First global class: classes `< LOCAL_END` are the local kinds.
    pub(crate) const LOCAL_END: usize = 4;

    /// The class of an edge kind.
    #[inline]
    pub fn of(kind: EdgeKind) -> AdjClass {
        match kind {
            EdgeKind::New => AdjClass::New,
            EdgeKind::Assign => AdjClass::Assign,
            EdgeKind::Load(_) => AdjClass::Load,
            EdgeKind::Store(_) => AdjClass::Store,
            EdgeKind::AssignGlobal => AdjClass::AssignGlobal,
            EdgeKind::Entry(_) => AdjClass::Entry,
            EdgeKind::Exit(_) => AdjClass::Exit,
        }
    }
}

/// One entry of a node's kind-partitioned adjacency: the far endpoint and
/// the edge's operand, stored inline so traversal never touches the edge
/// arena. 12 bytes, `Copy`.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Adj {
    /// The far endpoint: `dst` in out-adjacency, `src` in in-adjacency.
    pub node: NodeId,
    /// Kind operand (field / call-site raw id; 0 for operand-less kinds).
    pub(crate) operand: u32,
    /// The underlying edge in [`Pag::edges`](crate::Pag::edges).
    pub edge: EdgeId,
}

impl Adj {
    /// The field label — only meaningful in `Load`/`Store` segments.
    #[inline]
    pub fn field(self) -> FieldId {
        FieldId::from_raw(self.operand)
    }

    /// The call site — only meaningful in `Entry`/`Exit` segments.
    #[inline]
    pub fn site(self) -> CallSiteId {
        CallSiteId::from_raw(self.operand)
    }
}

/// A `store(f)`/`load(f)` edge with both endpoints inline, as kept in the
/// per-field edge lists ([`Pag::stores_of`](crate::Pag::stores_of) /
/// [`Pag::loads_of`](crate::Pag::loads_of)); the match-edge expansions
/// iterate these without touching the edge arena.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct FieldEdge {
    /// Source node (the stored value / the load base).
    pub src: NodeId,
    /// Destination node (the store base / the loaded-into variable).
    pub dst: NodeId,
    /// The underlying edge.
    pub edge: EdgeId,
}

/// Index of an edge in the frozen graph's edge arena.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Raw dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an edge id from a raw index obtained from the owning
    /// [`Pag`](crate::Pag).
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        EdgeId(raw)
    }
}

impl std::fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "edge{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_split_matches_paper() {
        let f = FieldId::from_raw(0);
        let i = CallSiteId::from_raw(0);
        for kind in [
            EdgeKind::New,
            EdgeKind::Assign,
            EdgeKind::Load(f),
            EdgeKind::Store(f),
        ] {
            assert!(kind.is_local(), "{kind:?} should be local");
            assert!(!kind.is_global());
        }
        for kind in [
            EdgeKind::AssignGlobal,
            EdgeKind::Entry(i),
            EdgeKind::Exit(i),
        ] {
            assert!(kind.is_global(), "{kind:?} should be global");
            assert!(!kind.is_local());
        }
    }

    #[test]
    fn accessors() {
        let f = FieldId::from_raw(7);
        let i = CallSiteId::from_raw(9);
        assert_eq!(EdgeKind::Load(f).field(), Some(f));
        assert_eq!(EdgeKind::Store(f).field(), Some(f));
        assert_eq!(EdgeKind::Assign.field(), None);
        assert_eq!(EdgeKind::Entry(i).call_site(), Some(i));
        assert_eq!(EdgeKind::Exit(i).call_site(), Some(i));
        assert_eq!(EdgeKind::New.call_site(), None);
    }

    #[test]
    fn names_are_stable() {
        let f = FieldId::from_raw(0);
        assert_eq!(EdgeKind::Load(f).name(), "load");
        assert_eq!(EdgeKind::AssignGlobal.name(), "assignglobal");
    }
}
