//! A line-oriented text interchange format for PAGs.
//!
//! The reproduction bands note that the paper's pipeline requires
//! *exporting program graphs* (Soot/Spark produced them). This format is
//! the interchange point: the frontend and the workload generator can dump
//! graphs, and any external producer can hand graphs to the analyses.
//!
//! The format is deliberately trivial — one declaration or edge per line,
//! whitespace-separated tokens, `#` comments — so it is diffable and easy
//! to generate from other toolchains:
//!
//! ```text
//! pag v1
//! class Vector extends Object
//! field elems
//! method Vector.add class Vector
//! global Main.gv
//! local this_add method Vector.add type Vector
//! obj o5 class Object method Vector.<init>
//! nullobj null7 method Main.main
//! callsite 26 method Main.main
//! new o5 t
//! assign a b
//! load elems this_add t
//! store arr p t
//! entry 26 tmp1 p
//! exit 22 ret_get t2
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::builder::{BuildError, PagBuilder};
use crate::edge::EdgeKind;
use crate::graph::Pag;
use crate::ids::{CallSiteId, ClassId, MethodId, ObjId, VarId};
use crate::node::VarKind;

/// Error produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTextError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseTextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTextError {}

fn err(line: usize, message: impl Into<String>) -> ParseTextError {
    ParseTextError {
        line,
        message: message.into(),
    }
}

fn build_err(line: usize, e: BuildError) -> ParseTextError {
    err(line, e.to_string())
}

/// Serializes a PAG to the text format.
///
/// The output is deterministic (declarations in id order, edges in
/// insertion order) and round-trips through [`parse_pag`].
pub fn write_pag(pag: &Pag) -> String {
    let mut out = String::new();
    out.push_str("pag v1\n");
    for (c, info) in pag.hierarchy().iter() {
        if c == pag.hierarchy().root() {
            continue;
        }
        match info.superclass {
            Some(sup) if sup != pag.hierarchy().root() => {
                let _ = writeln!(
                    out,
                    "class {} extends {}",
                    info.name,
                    pag.hierarchy().name(sup)
                );
            }
            _ => {
                let _ = writeln!(out, "class {}", info.name);
            }
        }
    }
    for (_, name) in pag.fields() {
        let _ = writeln!(out, "field {name}");
    }
    for (_, m) in pag.methods() {
        match m.class {
            Some(c) => {
                let _ = writeln!(out, "method {} class {}", m.name, pag.hierarchy().name(c));
            }
            None => {
                let _ = writeln!(out, "method {}", m.name);
            }
        }
    }
    for (_, v) in pag.vars() {
        match v.kind {
            VarKind::Global => {
                let _ = write!(out, "global {}", v.name);
            }
            VarKind::Local(m) => {
                let _ = write!(out, "local {} method {}", v.name, pag.method(m).name);
            }
        }
        if let Some(c) = v.declared_class {
            let _ = write!(out, " type {}", pag.hierarchy().name(c));
        }
        out.push('\n');
    }
    for (_, o) in pag.objs() {
        let keyword = if o.is_null { "nullobj" } else { "obj" };
        let _ = write!(out, "{keyword} {}", o.label);
        if let Some(c) = o.class {
            let _ = write!(out, " class {}", pag.hierarchy().name(c));
        }
        if let Some(m) = o.alloc_method {
            let _ = write!(out, " method {}", pag.method(m).name);
        }
        out.push('\n');
    }
    for (_, s) in pag.call_sites() {
        let _ = write!(
            out,
            "callsite {} method {}",
            s.label,
            pag.method(s.caller).name
        );
        if s.recursive {
            out.push_str(" recursive");
        }
        out.push('\n');
    }
    for e in pag.edges() {
        let src = pag.node_label(e.src);
        let dst = pag.node_label(e.dst);
        match e.kind {
            EdgeKind::New => {
                let _ = writeln!(out, "new {src} {dst}");
            }
            EdgeKind::Assign | EdgeKind::AssignGlobal => {
                let _ = writeln!(out, "assign {src} {dst}");
            }
            EdgeKind::Load(f) => {
                let _ = writeln!(out, "load {} {src} {dst}", pag.field_name(f));
            }
            EdgeKind::Store(f) => {
                let _ = writeln!(out, "store {} {src} {dst}", pag.field_name(f));
            }
            EdgeKind::Entry(s) => {
                let _ = writeln!(out, "entry {} {src} {dst}", pag.call_site(s).label);
            }
            EdgeKind::Exit(s) => {
                let _ = writeln!(out, "exit {} {src} {dst}", pag.call_site(s).label);
            }
        }
    }
    out
}

/// Parser state: name environments built up from declarations.
struct Env {
    classes: HashMap<String, ClassId>,
    methods: HashMap<String, MethodId>,
    vars: HashMap<String, VarId>,
    objs: HashMap<String, ObjId>,
    sites: HashMap<String, CallSiteId>,
}

impl Env {
    fn class(&self, name: &str, line: usize) -> Result<ClassId, ParseTextError> {
        self.classes
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown class `{name}`")))
    }
    fn method(&self, name: &str, line: usize) -> Result<MethodId, ParseTextError> {
        self.methods
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown method `{name}`")))
    }
    fn var(&self, name: &str, line: usize) -> Result<VarId, ParseTextError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown variable `{name}`")))
    }
    fn obj(&self, name: &str, line: usize) -> Result<ObjId, ParseTextError> {
        self.objs
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown object `{name}`")))
    }
    fn site(&self, name: &str, line: usize) -> Result<CallSiteId, ParseTextError> {
        self.sites
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown call site `{name}`")))
    }
}

/// Parses the text format into a frozen [`Pag`].
///
/// # Errors
///
/// Returns a [`ParseTextError`] with the 1-based line number for syntax
/// errors, unknown names, or violated PAG invariants.
pub fn parse_pag(input: &str) -> Result<Pag, ParseTextError> {
    let mut b = PagBuilder::new();
    let mut env = Env {
        classes: HashMap::new(),
        methods: HashMap::new(),
        vars: HashMap::new(),
        objs: HashMap::new(),
        sites: HashMap::new(),
    };
    env.classes
        .insert("Object".to_owned(), ClassId::from_raw(0));

    let mut saw_header = false;
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        // `#` starts a comment only at the beginning of the line or
        // after whitespace: entity names may contain `#` (the frontend
        // names locals `Class.method#var`).
        let without_comment = match raw.find('#') {
            Some(0) => "",
            Some(i) if raw[..i].ends_with([' ', '\t']) => &raw[..i],
            _ => raw,
        };
        let line = without_comment.trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if !saw_header {
            if toks.as_slice() != ["pag", "v1"] {
                return Err(err(lineno, "expected header `pag v1`"));
            }
            saw_header = true;
            continue;
        }
        match toks[0] {
            "class" => match toks.as_slice() {
                ["class", name] => {
                    let id = b.add_class(name, None).map_err(|e| build_err(lineno, e))?;
                    env.classes.insert((*name).to_owned(), id);
                }
                ["class", name, "extends", sup] => {
                    let sup = env.class(sup, lineno)?;
                    let id = b
                        .add_class(name, Some(sup))
                        .map_err(|e| build_err(lineno, e))?;
                    env.classes.insert((*name).to_owned(), id);
                }
                _ => return Err(err(lineno, "malformed class declaration")),
            },
            "field" => match toks.as_slice() {
                ["field", name] => {
                    b.field(name);
                }
                _ => return Err(err(lineno, "malformed field declaration")),
            },
            "method" => {
                let (name, class) = match toks.as_slice() {
                    ["method", name] => (*name, None),
                    ["method", name, "class", c] => (*name, Some(env.class(c, lineno)?)),
                    _ => return Err(err(lineno, "malformed method declaration")),
                };
                let id = b
                    .add_method(name, class)
                    .map_err(|e| build_err(lineno, e))?;
                env.methods.insert(name.to_owned(), id);
            }
            "global" => {
                let (name, ty) = match toks.as_slice() {
                    ["global", name] => (*name, None),
                    ["global", name, "type", t] => (*name, Some(env.class(t, lineno)?)),
                    _ => return Err(err(lineno, "malformed global declaration")),
                };
                let id = b.add_global(name, ty).map_err(|e| build_err(lineno, e))?;
                env.vars.insert(name.to_owned(), id);
            }
            "local" => {
                let (name, method, ty) = match toks.as_slice() {
                    ["local", name, "method", m] => (*name, env.method(m, lineno)?, None),
                    ["local", name, "method", m, "type", t] => {
                        (*name, env.method(m, lineno)?, Some(env.class(t, lineno)?))
                    }
                    _ => return Err(err(lineno, "malformed local declaration")),
                };
                let id = b
                    .add_local(name, method, ty)
                    .map_err(|e| build_err(lineno, e))?;
                env.vars.insert(name.to_owned(), id);
            }
            "obj" | "nullobj" => {
                let is_null = toks[0] == "nullobj";
                let label = *toks
                    .get(1)
                    .ok_or_else(|| err(lineno, "missing object label"))?;
                let mut class = None;
                let mut method = None;
                let mut i = 2;
                while i + 1 < toks.len() + 1 && i < toks.len() {
                    match toks[i] {
                        "class" => {
                            let c = toks
                                .get(i + 1)
                                .ok_or_else(|| err(lineno, "missing class name"))?;
                            class = Some(env.class(c, lineno)?);
                            i += 2;
                        }
                        "method" => {
                            let m = toks
                                .get(i + 1)
                                .ok_or_else(|| err(lineno, "missing method name"))?;
                            method = Some(env.method(m, lineno)?);
                            i += 2;
                        }
                        other => return Err(err(lineno, format!("unexpected token `{other}`"))),
                    }
                }
                let id = if is_null {
                    b.add_null_obj(label, method)
                } else {
                    b.add_obj(label, class, method)
                }
                .map_err(|e| build_err(lineno, e))?;
                env.objs.insert(label.to_owned(), id);
            }
            "callsite" => {
                let (label, method, recursive) = match toks.as_slice() {
                    ["callsite", label, "method", m] => (*label, env.method(m, lineno)?, false),
                    ["callsite", label, "method", m, "recursive"] => {
                        (*label, env.method(m, lineno)?, true)
                    }
                    _ => return Err(err(lineno, "malformed callsite declaration")),
                };
                let id = b
                    .add_call_site(label, method)
                    .map_err(|e| build_err(lineno, e))?;
                if recursive {
                    b.set_recursive(id, true)
                        .map_err(|e| build_err(lineno, e))?;
                }
                env.sites.insert(label.to_owned(), id);
            }
            "new" => match toks.as_slice() {
                ["new", obj, var] => {
                    let o = env.obj(obj, lineno)?;
                    let v = env.var(var, lineno)?;
                    b.add_new(o, v).map_err(|e| build_err(lineno, e))?;
                }
                _ => return Err(err(lineno, "malformed new edge")),
            },
            "assign" | "assignglobal" => match toks.as_slice() {
                [_, src, dst] => {
                    let s = env.var(src, lineno)?;
                    let d = env.var(dst, lineno)?;
                    b.add_assign(s, d).map_err(|e| build_err(lineno, e))?;
                }
                _ => return Err(err(lineno, "malformed assign edge")),
            },
            "load" => match toks.as_slice() {
                ["load", field, base, dst] => {
                    let f = b.field(field);
                    let base = env.var(base, lineno)?;
                    let dst = env.var(dst, lineno)?;
                    b.add_load(f, base, dst).map_err(|e| build_err(lineno, e))?;
                }
                _ => return Err(err(lineno, "malformed load edge")),
            },
            "store" => match toks.as_slice() {
                ["store", field, src, base] => {
                    let f = b.field(field);
                    let src = env.var(src, lineno)?;
                    let base = env.var(base, lineno)?;
                    b.add_store(f, src, base)
                        .map_err(|e| build_err(lineno, e))?;
                }
                _ => return Err(err(lineno, "malformed store edge")),
            },
            "entry" => match toks.as_slice() {
                ["entry", site, actual, formal] => {
                    let s = env.site(site, lineno)?;
                    let a = env.var(actual, lineno)?;
                    let p = env.var(formal, lineno)?;
                    b.add_entry(s, a, p).map_err(|e| build_err(lineno, e))?;
                }
                _ => return Err(err(lineno, "malformed entry edge")),
            },
            "exit" => match toks.as_slice() {
                ["exit", site, ret, dst] => {
                    let s = env.site(site, lineno)?;
                    let r = env.var(ret, lineno)?;
                    let d = env.var(dst, lineno)?;
                    b.add_exit(s, r, d).map_err(|e| build_err(lineno, e))?;
                }
                _ => return Err(err(lineno, "malformed exit edge")),
            },
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    if !saw_header {
        return Err(err(1, "empty input: expected header `pag v1`"));
    }
    Ok(b.finish())
}

/// Writes a store-edge orientation note: exposed for doc examples.
///
/// The text `store f src base` line mirrors the statement `base.f = src`;
/// the PAG edge runs `src --store(f)--> base` (value flow).
#[doc(hidden)]
pub fn _format_notes() {}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
pag v1
# a vector-ish example
class Vector
class Stack extends Vector
field elems
method main
method Vector.get class Vector
global G type Vector
local v method main type Vector
local t method Vector.get
local this_get method Vector.get
obj o1 class Vector method main
nullobj n1 method main
callsite 7 method main
new o1 v
assign v G
load elems this_get t
entry 7 v this_get
exit 7 t v
";

    #[test]
    fn parses_sample() {
        let pag = parse_pag(SAMPLE).unwrap();
        assert_eq!(pag.num_methods(), 2);
        assert_eq!(pag.num_vars(), 4);
        assert_eq!(pag.num_objs(), 2);
        assert_eq!(pag.num_edges(), 5);
        let v = pag.find_var("v").unwrap();
        assert_eq!(
            pag.var(v).declared_class,
            Some(pag.hierarchy().find("Vector").unwrap())
        );
        let n1 = pag.find_obj("n1").unwrap();
        assert!(pag.obj(n1).is_null);
    }

    #[test]
    fn round_trips() {
        let pag = parse_pag(SAMPLE).unwrap();
        let text = write_pag(&pag);
        let pag2 = parse_pag(&text).unwrap();
        assert_eq!(pag.num_edges(), pag2.num_edges());
        assert_eq!(pag.num_vars(), pag2.num_vars());
        let kinds1: Vec<_> = pag.edges().iter().map(|e| e.kind).collect();
        let kinds2: Vec<_> = pag2.edges().iter().map(|e| e.kind).collect();
        assert_eq!(kinds1, kinds2);
        // Idempotence: writing again yields identical text.
        assert_eq!(text, write_pag(&pag2));
    }

    #[test]
    fn rejects_missing_header() {
        let e = parse_pag("class A\n").unwrap_err();
        assert!(e.message.contains("header"));
    }

    #[test]
    fn rejects_unknown_names_with_line_numbers() {
        let e = parse_pag("pag v1\nnew o1 v\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown object"));
    }

    #[test]
    fn rejects_unknown_directives() {
        let e = parse_pag("pag v1\nfrobnicate x\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let pag = parse_pag("pag v1\n\n# nothing\nmethod m\n").unwrap();
        assert_eq!(pag.num_methods(), 1);
    }

    #[test]
    fn recursive_callsite_round_trips() {
        let src = "pag v1\nmethod m\nlocal a method m\nlocal b method m\n\
                   callsite c1 method m recursive\nentry c1 a b\n";
        let pag = parse_pag(src).unwrap();
        let site = pag.find_call_site("c1").unwrap();
        assert!(pag.is_recursive_site(site));
        let pag2 = parse_pag(&write_pag(&pag)).unwrap();
        assert!(pag2.is_recursive_site(pag2.find_call_site("c1").unwrap()));
    }

    #[test]
    fn build_errors_carry_line_numbers() {
        let src =
            "pag v1\nmethod m1\nmethod m2\nlocal a method m1\nlocal b method m2\nassign a b\n";
        let e = parse_pag(src).unwrap_err();
        assert_eq!(e.line, 6);
        assert!(e.message.contains("crosses method"));
    }
}
