//! Client-facing program metadata.
//!
//! The three evaluation clients of the paper (§5.2) issue queries about
//! specific program points: downcasts (`SafeCast`), dereferences
//! (`NullDeref`) and factory-method returns (`FactoryM`). Frontends —
//! the Java-subset compiler and the synthetic workload generator — emit
//! this metadata alongside the PAG so clients can generate their query
//! sets without re-inspecting source code.

use crate::ids::{ClassId, MethodId, VarId};

/// A downcast site `v = (T) u`: the `SafeCast` client asks whether every
/// object in `pts(v)` is a subtype of `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastSite {
    /// The variable holding the cast result (its points-to set is
    /// queried).
    pub var: VarId,
    /// The cast target class `T`.
    pub target: ClassId,
    /// Human-readable location, e.g. `Main.main:12`.
    pub location: String,
}

/// A dereference site (field access, array access or virtual call):
/// the `NullDeref` client asks whether `pts(base)` contains a
/// null-object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerefSite {
    /// The dereferenced base variable.
    pub base: VarId,
    /// Human-readable location.
    pub location: String,
}

/// A factory-method candidate: the `FactoryM` client asks whether every
/// object in `pts(ret)` was allocated inside `method` itself (i.e. the
/// method really returns a fresh object rather than a cached or escaped
/// one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactoryCandidate {
    /// The candidate method.
    pub method: MethodId,
    /// Its return-value variable.
    pub ret: VarId,
}

/// All client-relevant metadata of a program, produced next to its PAG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramInfo {
    /// Downcast sites for `SafeCast`.
    pub casts: Vec<CastSite>,
    /// Dereference sites for `NullDeref`.
    pub derefs: Vec<DerefSite>,
    /// Factory candidates for `FactoryM`.
    pub factories: Vec<FactoryCandidate>,
    /// The program entry point, when known.
    pub entry: Option<MethodId>,
}

impl ProgramInfo {
    /// Total number of client query sites.
    pub fn total_sites(&self) -> usize {
        self.casts.len() + self.derefs.len() + self.factories.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sites_counts_all_kinds() {
        let info = ProgramInfo {
            casts: vec![CastSite {
                var: VarId::from_raw(0),
                target: ClassId::from_raw(0),
                location: "a:1".into(),
            }],
            derefs: vec![
                DerefSite {
                    base: VarId::from_raw(1),
                    location: "a:2".into(),
                },
                DerefSite {
                    base: VarId::from_raw(2),
                    location: "a:3".into(),
                },
            ],
            factories: vec![],
            entry: None,
        };
        assert_eq!(info.total_sites(), 3);
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(ProgramInfo::default().total_sites(), 0);
    }
}
