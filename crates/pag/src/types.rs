//! The single-inheritance class hierarchy used for subtype tests.
//!
//! The `SafeCast` client (§5.2) needs to decide, for each downcast
//! `(T) v`, whether every abstract object in `pts(v)` has a runtime class
//! that is a subtype of `T`. Virtual-call resolution (CHA and on-the-fly)
//! also consults the hierarchy.

use crate::ids::ClassId;

/// Metadata for one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// Source-level name; unique within a [`Hierarchy`].
    pub name: String,
    /// Direct superclass, `None` only for the root class.
    pub superclass: Option<ClassId>,
}

/// A single-inheritance class hierarchy.
///
/// Class 0 is always the root (conventionally `Object`). Subtype tests are
/// answered in O(1) via an Euler-tour interval encoding computed lazily by
/// [`Hierarchy::seal`] (and automatically when the owning PAG is frozen).
///
/// # Examples
///
/// ```
/// use dynsum_pag::Hierarchy;
///
/// let mut h = Hierarchy::new();
/// let object = h.root();
/// let vec = h.add_class("Vector", Some(object)).unwrap();
/// let stack = h.add_class("Stack", Some(vec)).unwrap();
/// let mut sealed = h;
/// sealed.seal();
/// assert!(sealed.is_subtype(stack, object));
/// assert!(sealed.is_subtype(stack, vec));
/// assert!(!sealed.is_subtype(vec, stack));
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    classes: Vec<ClassInfo>,
    /// Children adjacency, used for the interval encoding and CHA cones.
    children: Vec<Vec<ClassId>>,
    /// `intervals[c] = (pre, post)`: `a <: b` iff `b.pre <= a.pre < b.post`.
    intervals: Vec<(u32, u32)>,
    sealed: bool,
}

/// Error returned when adding a class fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// A class with this name already exists.
    DuplicateClass(String),
    /// The named superclass identifier is out of range.
    UnknownSuperclass(ClassId),
    /// The hierarchy was already sealed; no further classes can be added.
    Sealed,
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::DuplicateClass(name) => {
                write!(f, "duplicate class name `{name}`")
            }
            HierarchyError::UnknownSuperclass(id) => {
                write!(f, "unknown superclass {id}")
            }
            HierarchyError::Sealed => write!(f, "hierarchy is sealed"),
        }
    }
}

impl std::error::Error for HierarchyError {}

impl Hierarchy {
    /// Name given to the implicit root class.
    pub const ROOT_NAME: &'static str = "Object";

    /// Creates a hierarchy containing only the root class `Object`.
    pub fn new() -> Self {
        Hierarchy {
            classes: vec![ClassInfo {
                name: Self::ROOT_NAME.to_owned(),
                superclass: None,
            }],
            children: vec![Vec::new()],
            intervals: Vec::new(),
            sealed: false,
        }
    }

    /// The root class (`Object`).
    #[inline]
    pub fn root(&self) -> ClassId {
        ClassId::from_raw(0)
    }

    /// Number of classes, including the root.
    #[inline]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if only the root class exists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.classes.len() == 1
    }

    /// Adds a class under `superclass` (the root when `None`).
    ///
    /// # Errors
    ///
    /// Returns an error if the name is taken, the superclass is unknown, or
    /// the hierarchy is already sealed.
    pub fn add_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
    ) -> Result<ClassId, HierarchyError> {
        if self.sealed {
            return Err(HierarchyError::Sealed);
        }
        if self.find(name).is_some() {
            return Err(HierarchyError::DuplicateClass(name.to_owned()));
        }
        let superclass = superclass.unwrap_or_else(|| self.root());
        if superclass.index() >= self.classes.len() {
            return Err(HierarchyError::UnknownSuperclass(superclass));
        }
        let id = ClassId::from_raw(self.classes.len() as u32);
        self.classes.push(ClassInfo {
            name: name.to_owned(),
            superclass: Some(superclass),
        });
        self.children.push(Vec::new());
        self.children[superclass.index()].push(id);
        Ok(id)
    }

    /// Looks a class up by name.
    pub fn find(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId::from_raw(i as u32))
    }

    /// Metadata for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn info(&self, class: ClassId) -> &ClassInfo {
        &self.classes[class.index()]
    }

    /// Name of `class`.
    pub fn name(&self, class: ClassId) -> &str {
        &self.classes[class.index()].name
    }

    /// Direct superclass (`None` for the root).
    pub fn superclass(&self, class: ClassId) -> Option<ClassId> {
        self.classes[class.index()].superclass
    }

    /// Direct subclasses of `class`.
    pub fn subclasses(&self, class: ClassId) -> &[ClassId] {
        &self.children[class.index()]
    }

    /// Iterates over all classes in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId::from_raw(i as u32), c))
    }

    /// Freezes the hierarchy and computes the O(1) subtype encoding.
    ///
    /// Called automatically by [`PagBuilder::finish`](crate::PagBuilder).
    /// Idempotent.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        let mut intervals = vec![(0, 0); self.classes.len()];
        let mut clock = 0u32;
        // Iterative DFS from the root; the hierarchy is a tree by
        // construction so every class is visited exactly once.
        let root = self.root();
        let mut stack: Vec<(ClassId, usize)> = vec![(root, 0)];
        intervals[root.index()].0 = clock;
        clock += 1;
        while let Some(top) = stack.last_mut() {
            let (node, child_idx) = (top.0, top.1);
            if child_idx < self.children[node.index()].len() {
                let child = self.children[node.index()][child_idx];
                top.1 += 1;
                intervals[child.index()].0 = clock;
                clock += 1;
                stack.push((child, 0));
            } else {
                intervals[node.index()].1 = clock;
                stack.pop();
            }
        }
        self.intervals = intervals;
        self.sealed = true;
    }

    /// Returns `true` once [`seal`](Self::seal) has been called.
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Subtype test: is `sub` equal to, or a (transitive) subclass of,
    /// `sup`?
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy has not been sealed, or either id is out of
    /// range.
    #[inline]
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        assert!(self.sealed, "hierarchy must be sealed before subtype tests");
        let (sub_pre, _) = self.intervals[sub.index()];
        let (sup_pre, sup_post) = self.intervals[sup.index()];
        sup_pre <= sub_pre && sub_pre < sup_post
    }

    /// All classes in the *cone* of `class`: `class` itself plus every
    /// transitive subclass. This is the CHA dispatch set for a receiver of
    /// declared type `class`.
    pub fn cone(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend(self.children[c.index()].iter().copied());
        }
        out.sort_unstable();
        out
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Hierarchy, ClassId, ClassId, ClassId, ClassId) {
        let mut h = Hierarchy::new();
        let a = h.add_class("A", None).unwrap();
        let b = h.add_class("B", Some(a)).unwrap();
        let c = h.add_class("C", Some(a)).unwrap();
        let d = h.add_class("D", Some(b)).unwrap();
        h.seal();
        (h, a, b, c, d)
    }

    #[test]
    fn root_exists() {
        let h = Hierarchy::new();
        assert_eq!(h.name(h.root()), "Object");
        assert_eq!(h.len(), 1);
        assert!(h.is_empty());
    }

    #[test]
    fn subtype_reflexive_and_transitive() {
        let (h, a, b, _c, d) = sample();
        assert!(h.is_subtype(a, a));
        assert!(h.is_subtype(b, a));
        assert!(h.is_subtype(d, a));
        assert!(h.is_subtype(d, b));
        assert!(h.is_subtype(a, h.root()));
    }

    #[test]
    fn subtype_rejects_siblings_and_reverse() {
        let (h, a, b, c, d) = sample();
        assert!(!h.is_subtype(a, b));
        assert!(!h.is_subtype(b, c));
        assert!(!h.is_subtype(c, d));
        assert!(!h.is_subtype(h.root(), a));
    }

    #[test]
    fn cone_contains_all_descendants() {
        let (h, a, b, c, d) = sample();
        assert_eq!(h.cone(a), vec![a, b, c, d]);
        assert_eq!(h.cone(b), vec![b, d]);
        assert_eq!(h.cone(c), vec![c]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut h = Hierarchy::new();
        h.add_class("A", None).unwrap();
        assert_eq!(
            h.add_class("A", None),
            Err(HierarchyError::DuplicateClass("A".to_owned()))
        );
    }

    #[test]
    fn sealed_rejects_additions() {
        let mut h = Hierarchy::new();
        h.seal();
        assert_eq!(h.add_class("X", None), Err(HierarchyError::Sealed));
        assert!(h.is_sealed());
    }

    #[test]
    fn find_by_name() {
        let (h, a, ..) = sample();
        assert_eq!(h.find("A"), Some(a));
        assert_eq!(h.find("Nope"), None);
    }
}
