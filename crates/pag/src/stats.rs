//! PAG shape statistics — the columns of the paper's Table 3.

use crate::edge::EdgeKind;
use crate::graph::Pag;
use crate::node::VarKind;

/// Statistics describing a PAG's shape, mirroring Table 3 of the paper:
/// entity counts, per-kind edge counts, and **locality** — the fraction of
/// local edges among all edges, which bounds the reach of DYNSUM's
/// summarization (the paper reports 80–90% for its nine benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagStats {
    /// Number of methods.
    pub methods: usize,
    /// Number of abstract objects (`O`; identical to `new` edge count in
    /// well-formed graphs where every object is defined).
    pub objs: usize,
    /// Number of local variables (`V`).
    pub locals: usize,
    /// Number of global variables (`G`).
    pub globals: usize,
    /// `new` edges.
    pub new_edges: usize,
    /// local `assign` edges.
    pub assign_edges: usize,
    /// `load(f)` edges.
    pub load_edges: usize,
    /// `store(f)` edges.
    pub store_edges: usize,
    /// `entry_i` edges.
    pub entry_edges: usize,
    /// `exit_i` edges.
    pub exit_edges: usize,
    /// `assignglobal` edges.
    pub assignglobal_edges: usize,
}

impl PagStats {
    /// Computes statistics for a graph.
    pub fn of(pag: &Pag) -> PagStats {
        let mut s = PagStats {
            methods: pag.num_methods(),
            objs: pag.num_objs(),
            ..PagStats::default()
        };
        for (_, v) in pag.vars() {
            match v.kind {
                VarKind::Local(_) => s.locals += 1,
                VarKind::Global => s.globals += 1,
            }
        }
        for e in pag.edges() {
            match e.kind {
                EdgeKind::New => s.new_edges += 1,
                EdgeKind::Assign => s.assign_edges += 1,
                EdgeKind::Load(_) => s.load_edges += 1,
                EdgeKind::Store(_) => s.store_edges += 1,
                EdgeKind::Entry(_) => s.entry_edges += 1,
                EdgeKind::Exit(_) => s.exit_edges += 1,
                EdgeKind::AssignGlobal => s.assignglobal_edges += 1,
            }
        }
        s
    }

    /// Total number of local edges (`new + assign + load + store`).
    pub fn local_edges(&self) -> usize {
        self.new_edges + self.assign_edges + self.load_edges + self.store_edges
    }

    /// Total number of global edges (`entry + exit + assignglobal`).
    pub fn global_edges(&self) -> usize {
        self.entry_edges + self.exit_edges + self.assignglobal_edges
    }

    /// Total edge count.
    pub fn total_edges(&self) -> usize {
        self.local_edges() + self.global_edges()
    }

    /// The paper's *locality* metric: local edges over all edges.
    /// Returns 0.0 for an empty graph.
    pub fn locality(&self) -> f64 {
        let total = self.total_edges();
        if total == 0 {
            0.0
        } else {
            self.local_edges() as f64 / total as f64
        }
    }

    /// Total node count.
    pub fn total_nodes(&self) -> usize {
        self.objs + self.locals + self.globals
    }
}

impl std::fmt::Display for PagStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "methods={} O={} V={} G={} new={} assign={} load={} store={} \
             entry={} exit={} assignglobal={} locality={:.1}%",
            self.methods,
            self.objs,
            self.locals,
            self.globals,
            self.new_edges,
            self.assign_edges,
            self.load_edges,
            self.store_edges,
            self.entry_edges,
            self.exit_edges,
            self.assignglobal_edges,
            self.locality() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PagBuilder;

    #[test]
    fn counts_and_locality() {
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m1, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        let o = b.add_obj("o1", None, Some(m1)).unwrap();
        let f = b.field("f");
        b.add_new(o, a).unwrap();
        b.add_assign(a, c).unwrap();
        b.add_load(f, a, c).unwrap();
        b.add_store(f, c, a).unwrap();
        b.add_assign(a, g).unwrap();
        let site = b.add_call_site("cs", m1).unwrap();
        b.add_entry(site, a, p).unwrap();
        b.add_exit(site, p, c).unwrap();
        let s = b.finish().stats();

        assert_eq!(s.methods, 2);
        assert_eq!(s.objs, 1);
        assert_eq!(s.locals, 3);
        assert_eq!(s.globals, 1);
        assert_eq!(s.new_edges, 1);
        assert_eq!(s.assign_edges, 1);
        assert_eq!(s.load_edges, 1);
        assert_eq!(s.store_edges, 1);
        assert_eq!(s.entry_edges, 1);
        assert_eq!(s.exit_edges, 1);
        assert_eq!(s.assignglobal_edges, 1);
        assert_eq!(s.local_edges(), 4);
        assert_eq!(s.global_edges(), 3);
        assert_eq!(s.total_edges(), 7);
        assert!((s.locality() - 4.0 / 7.0).abs() < 1e-9);
        assert_eq!(s.total_nodes(), 5);
    }

    #[test]
    fn empty_graph_locality_is_zero() {
        let s = PagBuilder::new().finish().stats();
        assert_eq!(s.locality(), 0.0);
        assert_eq!(s.total_edges(), 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = PagStats::default();
        assert!(format!("{s}").contains("locality"));
    }
}
