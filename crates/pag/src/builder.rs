//! Incremental construction of a [`Pag`] with invariant checking.

use std::collections::{HashMap, HashSet};

use crate::edge::{Edge, EdgeKind};
use crate::graph::Pag;
use crate::ids::{CallSiteId, ClassId, FieldId, MethodId, ObjId, VarId};
use crate::node::{CallSiteInfo, MethodInfo, NodeRef, ObjInfo, VarInfo, VarKind};
use crate::types::{Hierarchy, HierarchyError};

/// Error produced while building a PAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A name was reused within its namespace (variables, methods, objects
    /// or call sites).
    DuplicateName {
        /// Namespace: `"method"`, `"var"`, `"obj"`, or `"callsite"`.
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// An identifier was out of range for this builder.
    UnknownId(String),
    /// A local edge (`new`/`assign`/`load`/`store`) would connect locals
    /// of two different methods; such flow must be expressed with
    /// `entry`/`exit`/`assignglobal` edges.
    CrossMethodLocal {
        /// The edge kind name.
        kind: &'static str,
        /// The source variable.
        src: String,
        /// The destination variable.
        dst: String,
    },
    /// A local edge endpoint was a global variable.
    GlobalInLocalEdge {
        /// The edge kind name.
        kind: &'static str,
        /// The offending variable name.
        var: String,
    },
    /// An object was used as the source of more than one `new` edge. Each
    /// abstract object has exactly one defining variable (Spark-style
    /// PAGs; Algorithm 3's `new new̅` transition relies on this).
    ObjectRedefined(String),
    /// An object allocated in method `obj_method` was `new`-bound to a
    /// variable of a different method.
    NewAcrossMethods {
        /// The object label.
        obj: String,
        /// The variable name.
        var: String,
    },
    /// An `entry`/`exit` edge's caller-side variable does not belong to
    /// the call site's calling method.
    WrongCaller {
        /// The call-site label.
        site: String,
        /// The offending variable name.
        var: String,
    },
    /// Hierarchy error (duplicate class, unknown superclass, sealed).
    Hierarchy(HierarchyError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            BuildError::UnknownId(what) => write!(f, "unknown id: {what}"),
            BuildError::CrossMethodLocal { kind, src, dst } => write!(
                f,
                "{kind} edge `{src}` -> `{dst}` crosses method boundaries"
            ),
            BuildError::GlobalInLocalEdge { kind, var } => {
                write!(f, "{kind} edge touches global variable `{var}`")
            }
            BuildError::ObjectRedefined(obj) => {
                write!(f, "object `{obj}` already has a defining new edge")
            }
            BuildError::NewAcrossMethods { obj, var } => write!(
                f,
                "new edge binds object `{obj}` to variable `{var}` of another method"
            ),
            BuildError::WrongCaller { site, var } => write!(
                f,
                "variable `{var}` does not belong to the caller of site `{site}`"
            ),
            BuildError::Hierarchy(e) => write!(f, "hierarchy error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<HierarchyError> for BuildError {
    fn from(e: HierarchyError) -> Self {
        BuildError::Hierarchy(e)
    }
}

/// Builder for [`Pag`] instances.
///
/// The builder validates the structural invariants the analyses rely on:
/// local edges stay within one method, globals only appear on
/// `assignglobal` edges, every object has exactly one defining `new` edge,
/// and caller-side ends of `entry`/`exit` edges belong to the site's
/// calling method. Duplicate edges are silently ignored, which makes
/// on-the-fly call-graph construction idempotent.
///
/// # Examples
///
/// ```
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let main = b.add_method("main", None)?;
/// let callee = b.add_method("id", None)?;
/// let a = b.add_local("a", main, None)?;
/// let r = b.add_local("r", main, None)?;
/// let p = b.add_local("p", callee, None)?;
/// let ret = b.add_local("ret", callee, None)?;
/// let o = b.add_obj("o1", None, Some(main))?;
/// b.add_new(o, a)?;
/// let site = b.add_call_site("cs1", main)?;
/// b.add_entry(site, a, p)?;
/// b.add_assign(p, ret)?;
/// b.add_exit(site, ret, r)?;
/// let pag = b.finish();
/// assert_eq!(pag.num_edges(), 4);
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PagBuilder {
    hierarchy: Hierarchy,
    fields: Vec<String>,
    field_names: HashMap<String, FieldId>,
    methods: Vec<MethodInfo>,
    method_names: HashMap<String, MethodId>,
    vars: Vec<VarInfo>,
    var_names: HashMap<String, VarId>,
    objs: Vec<ObjInfo>,
    obj_labels: HashMap<String, ObjId>,
    call_sites: Vec<CallSiteInfo>,
    site_labels: HashMap<String, CallSiteId>,
    edges: Vec<(NodeRef, NodeRef, EdgeKind)>,
    edge_set: HashSet<(NodeRef, NodeRef, EdgeKind)>,
    obj_defined: Vec<bool>,
}

impl PagBuilder {
    /// Creates an empty builder with a root-only class hierarchy.
    pub fn new() -> Self {
        PagBuilder {
            hierarchy: Hierarchy::new(),
            fields: Vec::new(),
            field_names: HashMap::new(),
            methods: Vec::new(),
            method_names: HashMap::new(),
            vars: Vec::new(),
            var_names: HashMap::new(),
            objs: Vec::new(),
            obj_labels: HashMap::new(),
            call_sites: Vec::new(),
            site_labels: HashMap::new(),
            edges: Vec::new(),
            edge_set: HashSet::new(),
            obj_defined: Vec::new(),
        }
    }

    // ---- declarations -----------------------------------------------------

    /// The class hierarchy under construction.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Adds a class (under the root when `superclass` is `None`).
    ///
    /// # Errors
    ///
    /// Propagates [`HierarchyError`] for duplicates or unknown parents.
    pub fn add_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
    ) -> Result<ClassId, BuildError> {
        Ok(self.hierarchy.add_class(name, superclass)?)
    }

    /// Looks up a class by name.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        self.hierarchy.find(name)
    }

    /// Interns a field name (idempotent).
    pub fn field(&mut self, name: &str) -> FieldId {
        if let Some(&f) = self.field_names.get(name) {
            return f;
        }
        let id = FieldId::from_raw(self.fields.len() as u32);
        self.fields.push(name.to_owned());
        self.field_names.insert(name.to_owned(), id);
        id
    }

    /// The distinguished array-element field `arr` (§2).
    pub fn array_field(&mut self) -> FieldId {
        self.field(Pag::ARRAY_FIELD_NAME)
    }

    /// Declares a method.
    ///
    /// # Errors
    ///
    /// Fails on duplicate method names.
    pub fn add_method(
        &mut self,
        name: &str,
        class: Option<ClassId>,
    ) -> Result<MethodId, BuildError> {
        if self.method_names.contains_key(name) {
            return Err(BuildError::DuplicateName {
                kind: "method",
                name: name.to_owned(),
            });
        }
        let id = MethodId::from_raw(self.methods.len() as u32);
        self.methods.push(MethodInfo {
            name: name.to_owned(),
            class,
        });
        self.method_names.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declares a local variable of `method`.
    ///
    /// # Errors
    ///
    /// Fails on duplicate variable names or an unknown method.
    pub fn add_local(
        &mut self,
        name: &str,
        method: MethodId,
        declared_class: Option<ClassId>,
    ) -> Result<VarId, BuildError> {
        if method.index() >= self.methods.len() {
            return Err(BuildError::UnknownId(format!("{method}")));
        }
        self.add_var(name, VarKind::Local(method), declared_class)
    }

    /// Declares a global variable (static field).
    ///
    /// # Errors
    ///
    /// Fails on duplicate variable names.
    pub fn add_global(
        &mut self,
        name: &str,
        declared_class: Option<ClassId>,
    ) -> Result<VarId, BuildError> {
        self.add_var(name, VarKind::Global, declared_class)
    }

    fn add_var(
        &mut self,
        name: &str,
        kind: VarKind,
        declared_class: Option<ClassId>,
    ) -> Result<VarId, BuildError> {
        if self.var_names.contains_key(name) {
            return Err(BuildError::DuplicateName {
                kind: "var",
                name: name.to_owned(),
            });
        }
        let id = VarId::from_raw(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_owned(),
            kind,
            declared_class,
        });
        self.var_names.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declares an abstract object (allocation site).
    ///
    /// # Errors
    ///
    /// Fails on duplicate labels or an unknown method.
    pub fn add_obj(
        &mut self,
        label: &str,
        class: Option<ClassId>,
        alloc_method: Option<MethodId>,
    ) -> Result<ObjId, BuildError> {
        self.add_obj_inner(label, class, alloc_method, false)
    }

    /// Declares a distinguished *null* object, used to model `v = null`
    /// statements for the `NullDeref` client.
    ///
    /// # Errors
    ///
    /// Fails on duplicate labels or an unknown method.
    pub fn add_null_obj(
        &mut self,
        label: &str,
        alloc_method: Option<MethodId>,
    ) -> Result<ObjId, BuildError> {
        self.add_obj_inner(label, None, alloc_method, true)
    }

    fn add_obj_inner(
        &mut self,
        label: &str,
        class: Option<ClassId>,
        alloc_method: Option<MethodId>,
        is_null: bool,
    ) -> Result<ObjId, BuildError> {
        if self.obj_labels.contains_key(label) {
            return Err(BuildError::DuplicateName {
                kind: "obj",
                name: label.to_owned(),
            });
        }
        if let Some(m) = alloc_method {
            if m.index() >= self.methods.len() {
                return Err(BuildError::UnknownId(format!("{m}")));
            }
        }
        let id = ObjId::from_raw(self.objs.len() as u32);
        self.objs.push(ObjInfo {
            label: label.to_owned(),
            class,
            alloc_method,
            is_null,
        });
        self.obj_labels.insert(label.to_owned(), id);
        self.obj_defined.push(false);
        Ok(id)
    }

    /// Declares a call site inside `caller`.
    ///
    /// # Errors
    ///
    /// Fails on duplicate labels or an unknown caller.
    pub fn add_call_site(
        &mut self,
        label: &str,
        caller: MethodId,
    ) -> Result<CallSiteId, BuildError> {
        if self.site_labels.contains_key(label) {
            return Err(BuildError::DuplicateName {
                kind: "callsite",
                name: label.to_owned(),
            });
        }
        if caller.index() >= self.methods.len() {
            return Err(BuildError::UnknownId(format!("{caller}")));
        }
        let id = CallSiteId::from_raw(self.call_sites.len() as u32);
        self.call_sites.push(CallSiteInfo {
            label: label.to_owned(),
            caller,
            recursive: false,
        });
        self.site_labels.insert(label.to_owned(), id);
        Ok(id)
    }

    /// Marks a call site as recursive (inside a call-graph cycle); its
    /// entry/exit edges will be traversed context-insensitively.
    ///
    /// # Errors
    ///
    /// Fails on an unknown site.
    pub fn set_recursive(&mut self, site: CallSiteId, recursive: bool) -> Result<(), BuildError> {
        if site.index() >= self.call_sites.len() {
            return Err(BuildError::UnknownId(format!("{site}")));
        }
        self.call_sites[site.index()].recursive = recursive;
        Ok(())
    }

    // ---- edges --------------------------------------------------------------

    fn check_var(&self, v: VarId) -> Result<&VarInfo, BuildError> {
        self.vars
            .get(v.index())
            .ok_or_else(|| BuildError::UnknownId(format!("{v}")))
    }

    fn check_local_pair(
        &self,
        kind: &'static str,
        a: VarId,
        b: VarId,
    ) -> Result<MethodId, BuildError> {
        let ia = self.check_var(a)?;
        let ib = self.check_var(b)?;
        let ma = ia
            .kind
            .method()
            .ok_or_else(|| BuildError::GlobalInLocalEdge {
                kind,
                var: ia.name.clone(),
            })?;
        let mb = ib
            .kind
            .method()
            .ok_or_else(|| BuildError::GlobalInLocalEdge {
                kind,
                var: ib.name.clone(),
            })?;
        if ma != mb {
            return Err(BuildError::CrossMethodLocal {
                kind,
                src: ia.name.clone(),
                dst: ib.name.clone(),
            });
        }
        Ok(ma)
    }

    fn push_edge(&mut self, src: NodeRef, dst: NodeRef, kind: EdgeKind) {
        if self.edge_set.insert((src, dst, kind)) {
            self.edges.push((src, dst, kind));
        }
    }

    /// Adds a `new` edge binding `obj` to its defining variable `var`
    /// (`var = new ...`).
    ///
    /// # Errors
    ///
    /// Fails if the object already has a defining edge, the variable is
    /// not a local, or the object's allocating method differs from the
    /// variable's method.
    pub fn add_new(&mut self, obj: ObjId, var: VarId) -> Result<(), BuildError> {
        let vi = self.check_var(var)?;
        let oi = self
            .objs
            .get(obj.index())
            .ok_or_else(|| BuildError::UnknownId(format!("{obj}")))?;
        let vm = vi
            .kind
            .method()
            .ok_or_else(|| BuildError::GlobalInLocalEdge {
                kind: "new",
                var: vi.name.clone(),
            })?;
        if let Some(om) = oi.alloc_method {
            if om != vm {
                return Err(BuildError::NewAcrossMethods {
                    obj: oi.label.clone(),
                    var: vi.name.clone(),
                });
            }
        }
        if self.obj_defined[obj.index()] {
            return Err(BuildError::ObjectRedefined(oi.label.clone()));
        }
        self.obj_defined[obj.index()] = true;
        self.push_edge(NodeRef::Obj(obj), NodeRef::Var(var), EdgeKind::New);
        Ok(())
    }

    /// Adds an assignment `dst = src`, automatically classified as a local
    /// `assign` (both locals of one method) or an `assignglobal` (at least
    /// one side global).
    ///
    /// # Errors
    ///
    /// Fails if both sides are locals of *different* methods — such flow
    /// must go through `entry`/`exit` edges.
    pub fn add_assign(&mut self, src: VarId, dst: VarId) -> Result<(), BuildError> {
        let si = self.check_var(src)?;
        let di = self.check_var(dst)?;
        let kind = match (si.kind.method(), di.kind.method()) {
            (Some(ms), Some(md)) if ms == md => EdgeKind::Assign,
            (Some(_), Some(_)) => {
                return Err(BuildError::CrossMethodLocal {
                    kind: "assign",
                    src: si.name.clone(),
                    dst: di.name.clone(),
                })
            }
            _ => EdgeKind::AssignGlobal,
        };
        self.push_edge(NodeRef::Var(src), NodeRef::Var(dst), kind);
        Ok(())
    }

    /// Adds a field load `dst = base.f` (edge `base --load(f)--> dst`).
    ///
    /// # Errors
    ///
    /// Fails unless both variables are locals of one method.
    pub fn add_load(&mut self, field: FieldId, base: VarId, dst: VarId) -> Result<(), BuildError> {
        self.check_local_pair("load", base, dst)?;
        self.push_edge(NodeRef::Var(base), NodeRef::Var(dst), EdgeKind::Load(field));
        Ok(())
    }

    /// Adds a field store `base.f = src` (edge `src --store(f)--> base`).
    ///
    /// # Errors
    ///
    /// Fails unless both variables are locals of one method.
    pub fn add_store(&mut self, field: FieldId, src: VarId, base: VarId) -> Result<(), BuildError> {
        self.check_local_pair("store", src, base)?;
        self.push_edge(
            NodeRef::Var(src),
            NodeRef::Var(base),
            EdgeKind::Store(field),
        );
        Ok(())
    }

    /// Adds a parameter-passing edge `actual --entry_site--> formal`.
    ///
    /// # Errors
    ///
    /// Fails if `actual` is not a local of the site's calling method or
    /// `formal` is not a local.
    pub fn add_entry(
        &mut self,
        site: CallSiteId,
        actual: VarId,
        formal: VarId,
    ) -> Result<(), BuildError> {
        let si = self
            .call_sites
            .get(site.index())
            .ok_or_else(|| BuildError::UnknownId(format!("{site}")))?
            .clone();
        let ai = self.check_var(actual)?;
        if ai.kind.method() != Some(si.caller) {
            return Err(BuildError::WrongCaller {
                site: si.label.clone(),
                var: ai.name.clone(),
            });
        }
        let fi = self.check_var(formal)?;
        if fi.kind.is_global() {
            return Err(BuildError::GlobalInLocalEdge {
                kind: "entry",
                var: fi.name.clone(),
            });
        }
        self.push_edge(
            NodeRef::Var(actual),
            NodeRef::Var(formal),
            EdgeKind::Entry(site),
        );
        Ok(())
    }

    /// Adds a return edge `ret --exit_site--> dst`.
    ///
    /// # Errors
    ///
    /// Fails if `dst` is not a local of the site's calling method or
    /// `ret` is not a local.
    pub fn add_exit(&mut self, site: CallSiteId, ret: VarId, dst: VarId) -> Result<(), BuildError> {
        let si = self
            .call_sites
            .get(site.index())
            .ok_or_else(|| BuildError::UnknownId(format!("{site}")))?
            .clone();
        let di = self.check_var(dst)?;
        if di.kind.method() != Some(si.caller) {
            return Err(BuildError::WrongCaller {
                site: si.label.clone(),
                var: di.name.clone(),
            });
        }
        let ri = self.check_var(ret)?;
        if ri.kind.is_global() {
            return Err(BuildError::GlobalInLocalEdge {
                kind: "exit",
                var: ri.name.clone(),
            });
        }
        self.push_edge(NodeRef::Var(ret), NodeRef::Var(dst), EdgeKind::Exit(site));
        Ok(())
    }

    // ---- lookups --------------------------------------------------------------

    /// Looks up a declared variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.var_names.get(name).copied()
    }

    /// Looks up a declared method by name.
    pub fn find_method(&self, name: &str) -> Option<MethodId> {
        self.method_names.get(name).copied()
    }

    /// The name a method was declared under.
    pub fn method_name(&self, method: MethodId) -> Option<&str> {
        self.methods.get(method.index()).map(|m| m.name.as_str())
    }

    // ---- finish --------------------------------------------------------------

    /// Current number of edges (before freezing).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`Pag`], sealing the class
    /// hierarchy and computing all adjacency indices.
    pub fn finish(mut self) -> Pag {
        self.hierarchy.seal();
        let num_vars = self.vars.len() as u32;
        let to_node = |r: NodeRef| match r {
            NodeRef::Var(v) => crate::node::NodeId(v.as_raw()),
            NodeRef::Obj(o) => crate::node::NodeId(num_vars + o.as_raw()),
        };
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .map(|&(s, d, kind)| Edge {
                src: to_node(s),
                dst: to_node(d),
                kind,
            })
            .collect();
        Pag::assemble(
            self.hierarchy,
            self.fields,
            self.methods,
            self.vars,
            self.objs,
            self.call_sites,
            edges,
        )
    }
}

impl Default for PagBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeRef;

    fn two_methods() -> (PagBuilder, MethodId, MethodId) {
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        (b, m1, m2)
    }

    #[test]
    fn assign_auto_classifies() {
        let (mut b, m1, _) = two_methods();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m1, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        b.add_assign(a, c).unwrap();
        b.add_assign(a, g).unwrap();
        b.add_assign(g, c).unwrap();
        let pag = b.finish();
        let kinds: Vec<_> = pag.edges().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EdgeKind::Assign,
                EdgeKind::AssignGlobal,
                EdgeKind::AssignGlobal
            ]
        );
    }

    #[test]
    fn cross_method_assign_rejected() {
        let (mut b, m1, m2) = two_methods();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m2, None).unwrap();
        assert!(matches!(
            b.add_assign(a, c),
            Err(BuildError::CrossMethodLocal { .. })
        ));
    }

    #[test]
    fn object_single_definition() {
        let (mut b, m1, _) = two_methods();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m1, None).unwrap();
        let o = b.add_obj("o1", None, Some(m1)).unwrap();
        b.add_new(o, a).unwrap();
        assert!(matches!(
            b.add_new(o, c),
            Err(BuildError::ObjectRedefined(_))
        ));
    }

    #[test]
    fn new_across_methods_rejected() {
        let (mut b, m1, m2) = two_methods();
        let a = b.add_local("a", m2, None).unwrap();
        let o = b.add_obj("o1", None, Some(m1)).unwrap();
        assert!(matches!(
            b.add_new(o, a),
            Err(BuildError::NewAcrossMethods { .. })
        ));
    }

    #[test]
    fn load_store_require_same_method_locals() {
        let (mut b, m1, m2) = two_methods();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m2, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        let f = b.field("f");
        assert!(b.add_load(f, a, c).is_err());
        assert!(b.add_store(f, g, a).is_err());
        let d = b.add_local("d", m1, None).unwrap();
        assert!(b.add_load(f, a, d).is_ok());
        assert!(b.add_store(f, d, a).is_ok());
    }

    #[test]
    fn entry_exit_check_caller_side() {
        let (mut b, m1, m2) = two_methods();
        let a = b.add_local("a", m1, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let r = b.add_local("r", m2, None).unwrap();
        let d = b.add_local("d", m1, None).unwrap();
        let wrong = b.add_local("w", m2, None).unwrap();
        let site = b.add_call_site("cs1", m1).unwrap();
        assert!(b.add_entry(site, a, p).is_ok());
        assert!(matches!(
            b.add_entry(site, wrong, p),
            Err(BuildError::WrongCaller { .. })
        ));
        assert!(b.add_exit(site, r, d).is_ok());
        assert!(matches!(
            b.add_exit(site, r, wrong),
            Err(BuildError::WrongCaller { .. })
        ));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let (mut b, m1, _) = two_methods();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m1, None).unwrap();
        b.add_assign(a, c).unwrap();
        b.add_assign(a, c).unwrap();
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn field_interning_is_idempotent() {
        let mut b = PagBuilder::new();
        let f1 = b.field("elems");
        let f2 = b.field("elems");
        assert_eq!(f1, f2);
        let arr = b.array_field();
        assert_eq!(b.field("arr"), arr);
    }

    #[test]
    fn finish_builds_adjacency() {
        let (mut b, m1, _) = two_methods();
        let a = b.add_local("a", m1, None).unwrap();
        let c = b.add_local("c", m1, None).unwrap();
        let o = b.add_obj("o1", None, Some(m1)).unwrap();
        b.add_new(o, a).unwrap();
        b.add_assign(a, c).unwrap();
        let pag = b.finish();
        let na = pag.var_node(a);
        let nc = pag.var_node(c);
        let no = pag.obj_node(o);
        assert_eq!(pag.out_edges(no).len(), 1);
        assert_eq!(pag.in_edges(na).len(), 1);
        assert_eq!(pag.out_edges(na).len(), 1);
        assert_eq!(pag.in_edges(nc).len(), 1);
        assert_eq!(pag.node_ref(no), NodeRef::Obj(o));
        assert!(pag.has_local_edge(na));
        assert!(!pag.has_global_in(na));
    }

    #[test]
    fn recursive_flag_round_trips() {
        let (mut b, m1, _) = two_methods();
        let site = b.add_call_site("cs1", m1).unwrap();
        b.set_recursive(site, true).unwrap();
        let pag = b.finish();
        assert!(pag.is_recursive_site(site));
    }
}
