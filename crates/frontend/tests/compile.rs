//! End-to-end frontend tests: source → PAG shape.

use dynsum_frontend::{compile, compile_with, CallGraphMode};
use dynsum_pag::{EdgeKind, VarKind};

/// The paper's Figure 2 program, in this frontend's syntax.
const FIGURE2: &str = r#"
class Vector {
    Object[] elems;
    int count;
    Vector() { Object[] t = new Object[8]; this.elems = t; }
    void add(Object p) { Object[] t = this.elems; t[0] = p; }
    Object get(int i) { Object[] t = this.elems; return t[i]; }
}
class Integer { }
class Client {
    Vector vec;
    Client() { }
    void set(Vector v) { this.vec = v; }
    Object retrieve() { Vector t = this.vec; return t.get(0); }
}
class Main {
    static void main() {
        Vector v1 = new Vector();
        v1.add(new Integer());
        Client c1 = new Client();
        c1.set(v1);
        Vector v2 = new Vector();
        v2.add(new String());
        Client c2 = new Client();
        c2.set(v2);
        Object s1 = c1.retrieve();
        Object s2 = c2.retrieve();
    }
}
class String { }
"#;

#[test]
fn figure2_compiles_and_validates() {
    let c = compile(FIGURE2).expect("figure 2 must compile");
    assert!(dynsum_pag::validate(&c.pag).is_empty());
    // Methods: Vector {ctor, add, get}, Client {ctor, set, retrieve},
    // Main {main} — 7 total.
    assert_eq!(c.pag.num_methods(), 7);
    assert!(c.pag.find_method("Vector.get").is_some());
    assert!(c.pag.find_method("Client.<init>").is_some());
    // Every object has exactly one defining new edge.
    let new_edges = c
        .pag
        .edges()
        .iter()
        .filter(|e| e.kind == EdgeKind::New)
        .count();
    assert_eq!(new_edges, c.pag.num_objs());
    // Array stores collapse onto `arr`.
    let arr = c.pag.find_field("arr").expect("arr field exists");
    assert!(!c.pag.stores_of(arr).is_empty());
    assert!(!c.pag.loads_of(arr).is_empty());
    // Entry/exit edges exist for the virtual calls.
    let stats = c.pag.stats();
    assert!(stats.entry_edges >= 8);
    assert!(stats.exit_edges >= 2);
    // Locality is high, as in Table 3.
    assert!(stats.locality() > 0.5, "locality = {}", stats.locality());
}

#[test]
fn statics_become_globals_and_clear_contexts() {
    let c = compile(
        "class Registry { static Object cache; }\n\
         class Main { static void main() { Registry.cache = new Main(); Object x = Registry.cache; } }",
    )
    .unwrap();
    let g = c.pag.find_var("Registry.cache").unwrap();
    assert_eq!(c.pag.var(g).kind, VarKind::Global);
    let ag = c
        .pag
        .edges()
        .iter()
        .filter(|e| e.kind == EdgeKind::AssignGlobal)
        .count();
    assert_eq!(ag, 2);
}

#[test]
fn casts_recorded_for_safecast() {
    let c = compile(
        "class A {} class B extends A {}\n\
         class Main { static void main() { A a = new B(); B b = (B) a; A a2 = (A) a; } }",
    )
    .unwrap();
    assert_eq!(c.info.casts.len(), 2);
    let b = c.pag.hierarchy().find("B").unwrap();
    assert!(c.info.casts.iter().any(|cs| cs.target == b));
}

#[test]
fn derefs_recorded_for_nullderef() {
    let c = compile(
        "class Box { Object item; Object take() { return this.item; } }\n\
         class Main { static void main() { Box b = null; Object x = b.take(); } }",
    )
    .unwrap();
    assert!(!c.info.derefs.is_empty());
    // The null literal produced a null object.
    assert!(c.pag.objs().any(|(_, o)| o.is_null));
}

#[test]
fn factory_candidates_recorded() {
    let c = compile(
        "class F { Object make() { return new Object(); } void noise() { } }\n\
         class Object2 {}",
    )
    .unwrap();
    assert_eq!(c.info.factories.len(), 1);
    let f = &c.info.factories[0];
    assert_eq!(c.pag.method(f.method).name, "F.make");
}

#[test]
fn entry_point_detected() {
    let c = compile("class Main { static void main() { } }").unwrap();
    let entry = c.info.entry.expect("main found");
    assert_eq!(c.pag.method(entry).name, "Main.main");
}

#[test]
fn cha_is_superset_of_on_the_fly() {
    // Receiver can only be B at runtime, but CHA dispatches to A.m too.
    let src = "class A { void m() { } }\n\
               class B extends A { void m() { } }\n\
               class Main { static void main() { A x = new B(); x.m(); } }";
    let otf = compile_with(src, CallGraphMode::OnTheFly).unwrap();
    let cha = compile_with(src, CallGraphMode::Cha).unwrap();
    let count = |pag: &dynsum_pag::Pag| {
        pag.edges()
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Entry(_)))
            .count()
    };
    assert!(
        count(&cha.pag) > count(&otf.pag),
        "CHA must add more entry edges ({} vs {})",
        count(&cha.pag),
        count(&otf.pag)
    );
}

#[test]
fn recursion_marked_on_self_calls() {
    let c = compile(
        "class R { Object walk(Object x) { return this.walk(x); } }\n\
         class Main { static void main() { R r = new R(); Object o = r.walk(new Main()); } }",
    )
    .unwrap();
    let rec_sites = c.pag.call_sites().filter(|(_, s)| s.recursive).count();
    assert_eq!(rec_sites, 1, "exactly the self-call is recursive");
}

#[test]
fn mutual_recursion_marked() {
    let c = compile(
        "class A { Object ping(B b) { return b.pong(this); } }\n\
         class B { Object pong(A a) { return a.ping(this); } }\n\
         class Main { static void main() { A a = new A(); B b = new B(); Object o = a.ping(b); } }",
    )
    .unwrap();
    let rec_sites = c.pag.call_sites().filter(|(_, s)| s.recursive).count();
    assert_eq!(rec_sites, 2, "both cycle edges are recursive");
}

#[test]
fn static_calls_resolve_directly() {
    let c = compile(
        "class Util { static Object id(Object x) { return x; } }\n\
         class Main { static void main() { Object o = Util.id(new Main()); } }",
    )
    .unwrap();
    let stats = c.pag.stats();
    assert_eq!(stats.entry_edges, 1);
    assert_eq!(stats.exit_edges, 1);
}

#[test]
fn unqualified_calls_use_implicit_this() {
    let c = compile(
        "class A { Object helper() { return new A(); } Object run() { return helper(); } }\n\
         class Main { static void main() { A a = new A(); Object o = a.run(); } }",
    )
    .unwrap();
    // run() must call helper() via this: an entry edge into A.helper#this.
    let this_helper = c.pag.find_var("A.helper#this").unwrap();
    let n = c.pag.var_node(this_helper);
    assert!(!c.pag.in_edges(n).is_empty());
}

#[test]
fn shadowing_in_nested_scopes() {
    let c = compile(
        "class Main { static void main() { Object x = new Main(); if (1 < 2) { Object x2 = x; String x3 = \"s\"; } } }",
    )
    .unwrap();
    assert!(c.pag.find_var("Main.main#x").is_some());
}

#[test]
fn compile_errors_are_helpful() {
    let e = compile("class A { void m() { unknown = 3; } }").unwrap_err();
    assert!(e.message.contains("unknown variable"));
    let e = compile("class A { void m(B b) { } }").unwrap_err();
    assert!(e.message.contains("unknown class"));
    let e = compile("class A { Object f; void m() { this.g = null; } }").unwrap_err();
    assert!(e.message.contains("no field"));
    let e = compile("class A { void m() { this.m(1); } }").unwrap_err();
    assert!(e.message.contains("argument"));
    let e = compile("class A { static void m() { Object x = this; } }").unwrap_err();
    assert!(e.message.contains("static"));
}

#[test]
fn exported_text_round_trips() {
    let c = compile(FIGURE2).unwrap();
    let text = dynsum_pag::text::write_pag(&c.pag);
    let back = dynsum_pag::text::parse_pag(&text).expect("round trip");
    assert_eq!(back.num_edges(), c.pag.num_edges());
    assert_eq!(back.num_vars(), c.pag.num_vars());
    assert_eq!(back.num_objs(), c.pag.num_objs());
}
