//! Property test: randomly generated — but well-formed by construction —
//! programs compile to valid PAGs whose demand answers respect the
//! Andersen oracle.
//!
//! Programs are built from a uniform class template (`next` link +
//! `val` payload + `get`/`set` methods) so every generated statement is
//! type-correct: field and method accesses always exist on the static
//! receiver type.

use dynsum_andersen::Andersen;
use dynsum_frontend::{compile, compile_with, CallGraphMode};
use proptest::prelude::*;

/// One statement template in `main`, with class/variable indices to be
/// resolved modulo the live counts.
#[derive(Debug, Clone)]
enum Stmt {
    /// `Ck v_i = new Ck();`
    Alloc(usize),
    /// `v_i.set(<any var>);`
    Set(usize, usize),
    /// `Object o_i = v_j.get();`
    Get(usize),
    /// `v_i.next = v_j;` (same class, enforced at render time)
    Link(usize, usize),
    /// `Ck c_i = (Ck) o_j;`
    Cast(usize, usize),
    /// wrap the next statement in `if (1 < 2) { ... }`
    If(Box<Stmt>),
    /// `Object n_i = null;`
    Null,
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let idx = 0usize..16;
    let leaf = prop_oneof![
        idx.clone().prop_map(Stmt::Alloc),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Stmt::Set(a, b)),
        idx.clone().prop_map(Stmt::Get),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Stmt::Link(a, b)),
        (idx.clone(), idx.clone()).prop_map(|(a, b)| Stmt::Cast(a, b)),
        Just(Stmt::Null),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| inner.prop_map(|s| Stmt::If(Box::new(s))))
}

/// Renders a program: `n_classes` uniform container classes plus a main
/// that executes the statement list. Tracks variable classes so `link`
/// only joins same-class containers and `cast` targets real classes.
fn render(n_classes: usize, stmts: &[Stmt]) -> String {
    let mut src = String::new();
    for c in 0..n_classes {
        src.push_str(&format!(
            "class C{c} {{\n  C{c} next;\n  Object val;\n  \
             Object get() {{ return this.val; }}\n  \
             void set(Object p) {{ this.val = p; }}\n}}\n"
        ));
    }
    src.push_str("class Main {\n  static void main() {\n");

    // (name, class) of container vars; names of Object vars.
    let mut containers: Vec<(String, usize)> = Vec::new();
    let mut objects: Vec<String> = Vec::new();
    let mut counter = 0usize;

    fn emit(
        s: &Stmt,
        src: &mut String,
        containers: &mut Vec<(String, usize)>,
        objects: &mut Vec<String>,
        counter: &mut usize,
        n_classes: usize,
        depth: usize,
    ) {
        // Declarations inside an `if` are block-scoped: emit them but do
        // not register them for use by later top-level statements.
        let scoped = depth > 0;
        let pad = "    ".repeat(depth + 1);
        match s {
            Stmt::Alloc(k) => {
                let class = k % n_classes;
                let name = format!("v{}", *counter);
                *counter += 1;
                src.push_str(&format!("{pad}C{class} {name} = new C{class}();\n"));
                if !scoped {
                    containers.push((name, class));
                }
            }
            Stmt::Set(i, j) => {
                if containers.is_empty() {
                    return;
                }
                let (recv, _) = &containers[i % containers.len()];
                // Argument: any container or object var (or a fresh alloc).
                let arg = if objects.is_empty() {
                    let (other, _) = &containers[j % containers.len()];
                    other.clone()
                } else {
                    objects[j % objects.len()].clone()
                };
                src.push_str(&format!("{pad}{recv}.set({arg});\n"));
            }
            Stmt::Get(j) => {
                if containers.is_empty() {
                    return;
                }
                let (recv, _) = &containers[j % containers.len()];
                let name = format!("o{}", *counter);
                *counter += 1;
                src.push_str(&format!("{pad}Object {name} = {recv}.get();\n"));
                if !scoped {
                    objects.push(name);
                }
            }
            Stmt::Link(i, j) => {
                if containers.is_empty() {
                    return;
                }
                let (a, ca) = containers[i % containers.len()].clone();
                // Find a same-class partner (possibly itself).
                let partner = containers
                    .iter()
                    .cycle()
                    .skip(j % containers.len())
                    .take(containers.len())
                    .find(|(_, c)| *c == ca)
                    .map(|(n, _)| n.clone())
                    .unwrap_or_else(|| a.clone());
                src.push_str(&format!("{pad}{a}.next = {partner};\n"));
            }
            Stmt::Cast(k, j) => {
                if objects.is_empty() {
                    return;
                }
                let class = k % n_classes;
                let obj = &objects[j % objects.len()];
                let name = format!("c{}", *counter);
                *counter += 1;
                src.push_str(&format!("{pad}C{class} {name} = (C{class}) {obj};\n"));
                if !scoped {
                    containers.push((name, class));
                }
            }
            Stmt::If(inner) => {
                src.push_str(&format!("{pad}if (1 < 2) {{\n"));
                emit(
                    inner,
                    src,
                    containers,
                    objects,
                    counter,
                    n_classes,
                    depth + 1,
                );
                src.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Null => {
                let name = format!("n{}", *counter);
                *counter += 1;
                src.push_str(&format!("{pad}Object {name} = null;\n"));
                if !scoped {
                    objects.push(name);
                }
            }
        }
    }

    for s in stmts {
        emit(
            s,
            &mut src,
            &mut containers,
            &mut objects,
            &mut counter,
            n_classes,
            0,
        );
    }
    src.push_str("  }\n}\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_compile_validate_and_stay_sound(
        n_classes in 1usize..=3,
        stmts in proptest::collection::vec(stmt_strategy(), 1..20),
    ) {
        let src = render(n_classes, &stmts);
        let compiled = compile(&src)
            .unwrap_or_else(|e| panic!("generated program failed:\n{}\n{}", src, e.render(&src)));
        prop_assert!(dynsum_pag::validate(&compiled.pag).is_empty());

        // Demand answers ⊆ Andersen on every local.
        let oracle = Andersen::analyze(&compiled.pag);
        let mut engine = dynsum_core::DynSum::new(&compiled.pag);
        use dynsum_core::DemandPointsTo;
        for (v, info) in compiled.pag.vars() {
            let r = engine.points_to(v);
            if !r.resolved {
                continue;
            }
            let oracle_set: std::collections::BTreeSet<_> =
                oracle.var_pts(v).iter().copied().collect();
            prop_assert!(
                r.pts.objects().is_subset(&oracle_set),
                "{} exceeded oracle in:\n{}",
                info.name,
                src
            );
        }
    }

    #[test]
    fn pretty_printing_is_a_fixed_point(
        n_classes in 1usize..=3,
        stmts in proptest::collection::vec(stmt_strategy(), 1..16),
    ) {
        use dynsum_frontend::{lex, parse, pretty};
        let src = render(n_classes, &stmts);
        let ast1 = parse(lex(&src).unwrap()).unwrap();
        let printed1 = pretty::print_program(&ast1);
        let ast2 = parse(lex(&printed1).unwrap())
            .unwrap_or_else(|e| panic!("printed output failed to parse: {e}\n{printed1}"));
        let printed2 = pretty::print_program(&ast2);
        prop_assert_eq!(printed1, printed2);
    }

    #[test]
    fn cha_entry_edges_superset_of_on_the_fly(
        n_classes in 1usize..=3,
        stmts in proptest::collection::vec(stmt_strategy(), 1..14),
    ) {
        let src = render(n_classes, &stmts);
        let otf = compile_with(&src, CallGraphMode::OnTheFly).unwrap();
        let cha = compile_with(&src, CallGraphMode::Cha).unwrap();
        prop_assert!(
            cha.pag.stats().entry_edges >= otf.pag.stats().entry_edges,
            "CHA must not dispatch to fewer targets\n{src}"
        );
    }
}
