//! The hand-written lexer.

use crate::error::CompileError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenizes `source` into a vector ending with an [`TokenKind::Eof`]
/// token.
///
/// Supports `//` line comments and `/* ... */` block comments.
///
/// # Errors
///
/// Returns a [`CompileError`] for unterminated strings or block comments
/// and for characters outside the language's alphabet.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span_here(&self, start: usize, line: u32, col: u32) -> Span {
        Span::new(start, self.pos, line, col)
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (start, line, col) = (self.pos, self.line, self.col);
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: self.span_here(start, line, col),
                });
                return Ok(out);
            };
            let kind = match b {
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b';' => self.single(TokenKind::Semi),
                b',' => self.single(TokenKind::Comma),
                b'.' => self.single(TokenKind::Dot),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::EqEq
                    } else {
                        TokenKind::Assign
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::NotEq
                    } else {
                        TokenKind::Bang
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                b'"' => self.string(start, line, col)?,
                b'0'..=b'9' => self.number(start),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(start),
                other => {
                    return Err(CompileError::new(
                        self.span_here(start, line, col),
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
            out.push(Token {
                kind,
                span: self.span_here(start, line, col),
            });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (start, line, col) = (self.pos, self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(CompileError::new(
                                    Span::new(start, self.pos, line, col),
                                    "unterminated block comment",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string(&mut self, start: usize, line: u32, col: u32) -> Result<TokenKind, CompileError> {
        self.bump(); // opening quote
        let content_start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    let text = self.src[content_start..self.pos].to_owned();
                    self.bump();
                    return Ok(TokenKind::Str(text));
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(CompileError::new(
                        Span::new(start, self.pos, line, col),
                        "unterminated string literal",
                    ))
                }
            }
        }
    }

    fn number(&mut self, start: usize) -> TokenKind {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        TokenKind::Int(text.parse().unwrap_or(0))
    }

    fn ident(&mut self, start: usize) -> TokenKind {
        while matches!(
            self.peek(),
            Some(b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        match &self.src[start..self.pos] {
            "class" => TokenKind::Class,
            "extends" => TokenKind::Extends,
            "static" => TokenKind::Static,
            "void" => TokenKind::Void,
            "new" => TokenKind::New,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "this" => TokenKind::This,
            "null" => TokenKind::Null,
            other => TokenKind::Ident(other.to_owned()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_class_header() {
        assert_eq!(
            kinds("class Vector extends Object {"),
            vec![
                TokenKind::Class,
                TokenKind::Ident("Vector".into()),
                TokenKind::Extends,
                TokenKind::Ident("Object".into()),
                TokenKind::LBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_and_literals() {
        assert_eq!(
            kinds(r#"x == 42 != "hi" <= >= < > ! = + - * /"#),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::EqEq,
                TokenKind::Int(42),
                TokenKind::NotEq,
                TokenKind::Str("hi".into()),
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Bang,
                TokenKind::Assign,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n /* block\n comment */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* no end").is_err());
    }

    #[test]
    fn rejects_bad_characters() {
        let e = lex("a § b").unwrap_err();
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(kinds("null"), vec![TokenKind::Null, TokenKind::Eof]);
        assert_eq!(
            kinds("nullish"),
            vec![TokenKind::Ident("nullish".into()), TokenKind::Eof]
        );
    }
}
