//! Abstract syntax of the Java-subset language.
//!
//! The language covers what the paper's PAGs need: classes with single
//! inheritance, instance and static fields, instance and static methods,
//! constructors, allocation, field/array loads and stores, casts,
//! virtual and static calls, `null`, strings, and (flow-irrelevant)
//! control flow.

use crate::span::Span;

/// A type annotation: a class name or `int`, optionally an array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeRef {
    /// Element type name (`int` is the only primitive).
    pub name: String,
    /// `true` for `T[]`.
    pub array: bool,
    /// Source location.
    pub span: Span,
}

impl TypeRef {
    /// `true` for the primitive `int` (non-pointer).
    pub fn is_int(&self) -> bool {
        !self.array && self.name == "int"
    }

    /// Display form (`T` or `T[]`).
    pub fn display(&self) -> String {
        if self.array {
            format!("{}[]", self.name)
        } else {
            self.name.clone()
        }
    }
}

/// A whole compilation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Class declarations, in source order.
    pub classes: Vec<ClassDecl>,
}

/// `class Name extends Super { members }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass name (`Object` when omitted).
    pub superclass: Option<String>,
    /// Instance fields.
    pub fields: Vec<FieldDecl>,
    /// Static fields (globals).
    pub statics: Vec<FieldDecl>,
    /// Methods and constructors.
    pub methods: Vec<MethodDecl>,
    /// Source location of the header.
    pub span: Span,
}

/// A field declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeRef,
    /// Source location.
    pub span: Span,
}

/// A method, constructor (name == class name, no return type) or static
/// method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// `None` for `void` and constructors.
    pub return_type: Option<TypeRef>,
    /// `true` for `static` methods.
    pub is_static: bool,
    /// `true` for constructors.
    pub is_ctor: bool,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the signature.
    pub span: Span,
}

/// A method parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeRef,
    /// Source location.
    pub span: Span,
}

/// Statements. Control flow is parsed but irrelevant to the
/// flow-insensitive analysis: bodies are lowered unconditionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `T x = e;` / `T x;`
    VarDecl {
        /// Declared type.
        ty: TypeRef,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `lvalue = e;`
    Assign {
        /// Assignment target.
        target: Expr,
        /// Assigned value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// An expression evaluated for effect (usually a call).
    Expr(Expr),
    /// `return e?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `if (c) s else s?` — both branches lowered.
    If {
        /// Condition (evaluated for effects only).
        cond: Expr,
        /// Then-branch.
        then_branch: Vec<Stmt>,
        /// Else-branch.
        else_branch: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `while (c) s` — body lowered once.
    While {
        /// Condition (evaluated for effects only).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Location.
        span: Span,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A variable or unqualified name (resolved later: local, param, or
    /// implicit `this` field).
    Name {
        /// The identifier.
        name: String,
        /// Location.
        span: Span,
    },
    /// `this`
    This {
        /// Location.
        span: Span,
    },
    /// `null`
    Null {
        /// Location.
        span: Span,
    },
    /// Integer literal (non-pointer).
    Int {
        /// The value.
        value: i64,
        /// Location.
        span: Span,
    },
    /// String literal (allocates a `String`).
    Str {
        /// The contents.
        value: String,
        /// Location.
        span: Span,
    },
    /// `new C(args)`
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// `new T[len]`
    NewArray {
        /// Element type name.
        elem: String,
        /// Length expression (effects only).
        len: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `(T) e`
    Cast {
        /// Target type.
        ty: TypeRef,
        /// Operand.
        expr: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `e.f`
    Field {
        /// Base object expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// Location.
        span: Span,
    },
    /// `e[i]`
    Index {
        /// Array expression.
        base: Box<Expr>,
        /// Index expression (effects only).
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `e.m(args)` (virtual) or `C.m(args)` (static, when `base` names a
    /// class) or `m(args)` (implicit `this`).
    Call {
        /// Receiver (`None` for implicit `this` / unqualified calls).
        base: Option<Box<Expr>>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// `a op b` (non-pointer result; both sides evaluated for effects).
    Binary {
        /// Left operand.
        lhs: Box<Expr>,
        /// Operator text.
        op: &'static str,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `!e` / `-e`.
    Unary {
        /// Operator text.
        op: &'static str,
        /// Operand.
        expr: Box<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Name { span, .. }
            | Expr::This { span }
            | Expr::Null { span }
            | Expr::Int { span, .. }
            | Expr::Str { span, .. }
            | Expr::New { span, .. }
            | Expr::NewArray { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_ref_display() {
        let t = TypeRef {
            name: "Vector".into(),
            array: false,
            span: Span::default(),
        };
        assert_eq!(t.display(), "Vector");
        let a = TypeRef {
            name: "Object".into(),
            array: true,
            span: Span::default(),
        };
        assert_eq!(a.display(), "Object[]");
        assert!(!a.is_int());
        let i = TypeRef {
            name: "int".into(),
            array: false,
            span: Span::default(),
        };
        assert!(i.is_int());
    }

    #[test]
    fn expr_span_accessor() {
        let s = Span::new(1, 2, 3, 4);
        assert_eq!(Expr::This { span: s }.span(), s);
        assert_eq!(Expr::Int { value: 1, span: s }.span(), s);
    }
}
