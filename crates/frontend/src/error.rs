//! Compiler diagnostics.

use crate::span::Span;

/// A compilation error with location and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Where the error occurred.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        CompileError {
            span,
            message: message.into(),
        }
    }

    /// Renders the error with a source excerpt and caret line:
    ///
    /// ```text
    /// error at 3:9: unknown class `Vectr`
    ///   |     Vectr v = new Vectr();
    ///   |     ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let line_text = source
            .lines()
            .nth(self.span.line.saturating_sub(1) as usize)
            .unwrap_or("");
        let caret_pad = " ".repeat(self.span.col.saturating_sub(1) as usize);
        format!(
            "error at {}: {}\n  | {}\n  | {}^\n",
            self.span, self.message, line_text, caret_pad
        )
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_offender() {
        let src = "class A {\n  Vectr v;\n}\n";
        let e = CompileError::new(Span::new(12, 17, 2, 3), "unknown class `Vectr`");
        let out = e.render(src);
        assert!(out.contains("error at 2:3"));
        assert!(out.contains("Vectr v;"));
        assert!(out.contains("  ^"));
    }

    #[test]
    fn display_has_location() {
        let e = CompileError::new(Span::new(0, 1, 1, 1), "boom");
        assert_eq!(e.to_string(), "error at 1:1: boom");
    }
}
