//! Call-graph construction: CHA and on-the-fly resolution of virtual
//! calls, plus recursion-cycle detection.
//!
//! The paper constructs the call graph *on the fly* with Andersen-style
//! analysis (Spark), keeping a context-sensitive call graph during
//! CFL-reachability exploration, and collapses recursion cycles (§5.1).
//! This module reproduces both steps:
//!
//! * **CHA** — every pending virtual call dispatches to the resolved
//!   override in each class of the receiver's static-type cone;
//! * **on-the-fly** — the PAG is solved with [`dynsum_andersen`], each
//!   receiver's points-to set picks concrete targets, new `entry`/`exit`
//!   edges feed back into the solution, and the loop runs to fixpoint;
//! * call sites whose caller and callee meet in one SCC of the final
//!   call graph are flagged [recursive](dynsum_pag::CallSiteInfo::recursive),
//!   which makes every engine traverse them context-insensitively.

use std::collections::{HashMap, HashSet};

use dynsum_andersen::Andersen;
use dynsum_pag::{CallSiteId, ClassId, MethodId};

use crate::error::CompileError;
use crate::lower::{Lowered, PendingCall};
use crate::span::Span;
use crate::symbols::Symbols;

/// How virtual calls are resolved to callees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CallGraphMode {
    /// Class-hierarchy analysis: dispatch to every override in the
    /// static type's cone. Sound, cheap, imprecise.
    Cha,
    /// On-the-fly: iterate Andersen-style points-to analysis and
    /// dispatch on the receivers' points-to sets (the paper's setup).
    #[default]
    OnTheFly,
}

/// Resolves all pending calls, adds their `entry`/`exit` edges, and marks
/// recursive call sites. Returns the per-site target map.
pub(crate) fn resolve_calls(
    lowered: &mut Lowered,
    mode: CallGraphMode,
) -> Result<HashMap<CallSiteId, Vec<MethodId>>, CompileError> {
    let mut targets: HashMap<CallSiteId, Vec<MethodId>> = HashMap::new();
    for &(site, _, callee) in &lowered.resolved_calls {
        targets.entry(site).or_default().push(callee);
    }

    match mode {
        CallGraphMode::Cha => {
            let pending = lowered.pending.clone();
            for call in &pending {
                let classes = cone_classes(&lowered.syms, call.static_class);
                let mut resolved: Vec<MethodId> = Vec::new();
                for c in classes {
                    if let Some(m) = lowered.syms.lookup_method(c, &call.method) {
                        if !m.is_static && m.params.len() == call.args.len() {
                            resolved.push(m.id);
                        }
                    }
                }
                resolved.sort_unstable();
                resolved.dedup();
                for m in resolved {
                    add_call_edges(lowered, call, m)?;
                    targets.entry(call.site).or_default().push(m);
                }
            }
        }
        CallGraphMode::OnTheFly => {
            // Fixpoint: each round solves the current PAG exhaustively
            // and dispatches every pending call on its receiver's
            // points-to set; new edges enable new flows next round.
            let pending = lowered.pending.clone();
            let mut known: HashSet<(CallSiteId, MethodId)> = HashSet::new();
            loop {
                let pag = lowered.syms.builder.clone().finish();
                let solution = Andersen::analyze(&pag);
                let mut grew = false;
                for call in &pending {
                    for &obj in solution.var_pts(call.recv) {
                        let Some(class) = pag.obj(obj).class else {
                            continue;
                        };
                        // Null objects and objects of unrelated types
                        // cannot be receivers here.
                        if pag.obj(obj).is_null {
                            continue;
                        }
                        if !pag.hierarchy().is_subtype(class, call.static_class) {
                            continue;
                        }
                        let Some(m) = lowered.syms.lookup_method(class, &call.method) else {
                            continue;
                        };
                        if m.is_static || m.params.len() != call.args.len() {
                            continue;
                        }
                        let mid = m.id;
                        if known.insert((call.site, mid)) {
                            add_call_edges(lowered, call, mid)?;
                            targets.entry(call.site).or_default().push(mid);
                            grew = true;
                        }
                    }
                }
                if !grew {
                    break;
                }
            }
        }
    }

    mark_recursion(lowered, &targets)?;
    Ok(targets)
}

/// All classes in the cone of `root` (itself + transitive subclasses).
/// Works on the unsealed hierarchy via the children lists.
fn cone_classes(syms: &Symbols, root: ClassId) -> Vec<ClassId> {
    // The builder's hierarchy is unsealed, but `subclasses` is available.
    let h = syms.builder.hierarchy();
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(c) = stack.pop() {
        out.push(c);
        stack.extend(h.subclasses(c).iter().copied());
    }
    out
}

/// Adds the `entry`/`exit` edges of one resolved call target.
fn add_call_edges(
    lowered: &mut Lowered,
    call: &PendingCall,
    target: MethodId,
) -> Result<(), CompileError> {
    let span = Span::default();
    let this_name = format!(
        "{}#this",
        lowered
            .syms
            .builder
            .method_name(target)
            .expect("resolved method exists")
    );
    let this_var = lowered
        .syms
        .builder
        .find_var(&this_name)
        .expect("instance methods have a this variable");
    lowered
        .syms
        .builder
        .add_entry(call.site, call.recv, this_var)
        .map_err(|e| CompileError::new(span, e.to_string()))?;

    // Parameter names come from the target's own signature.
    let params: Vec<String> = {
        let pag_name = lowered
            .syms
            .builder
            .method_name(target)
            .expect("resolved method exists")
            .to_owned();
        let sym = lowered
            .syms
            .methods
            .values()
            .find(|m| m.id == target)
            .expect("method symbol exists");
        sym.params
            .iter()
            .map(|(n, _)| format!("{pag_name}#{n}"))
            .collect()
    };
    for (i, arg) in call.args.iter().enumerate() {
        if let (Some(actual), Some(formal)) = (arg, lowered.syms.builder.find_var(&params[i])) {
            lowered
                .syms
                .builder
                .add_entry(call.site, *actual, formal)
                .map_err(|e| CompileError::new(span, e.to_string()))?;
        }
    }
    if let Some(dst) = call.dst {
        let ret_name = format!(
            "{}#ret",
            lowered
                .syms
                .builder
                .method_name(target)
                .expect("resolved method exists")
        );
        if let Some(ret) = lowered.syms.builder.find_var(&ret_name) {
            lowered
                .syms
                .builder
                .add_exit(call.site, ret, dst)
                .map_err(|e| CompileError::new(span, e.to_string()))?;
        }
    }
    Ok(())
}

/// Computes SCCs of the method-level call graph (iterative Tarjan) and
/// marks every call site whose caller and some target share an SCC.
fn mark_recursion(
    lowered: &mut Lowered,
    targets: &HashMap<CallSiteId, Vec<MethodId>>,
) -> Result<(), CompileError> {
    let n = lowered.syms.builder.clone().finish().num_methods();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut site_caller: HashMap<CallSiteId, MethodId> = HashMap::new();
    {
        let pag = lowered.syms.builder.clone().finish();
        for (site, info) in pag.call_sites() {
            site_caller.insert(site, info.caller);
        }
    }
    for (site, tgts) in targets {
        let caller = site_caller[site];
        for &t in tgts {
            succs[caller.index()].push(t.index());
        }
    }

    let scc = tarjan_scc(&succs);

    for (site, tgts) in targets {
        let caller = site_caller[site];
        let recursive = tgts.iter().any(
            |t| scc[t.index()] == scc[caller.index()], // Direct self-loops are their own SCC in Tarjan only when
                                                       // the edge exists, which it does here; same-component check
                                                       // covers them.
        );
        if recursive {
            lowered
                .syms
                .builder
                .set_recursive(*site, true)
                .map_err(|e| CompileError::new(Span::default(), e.to_string()))?;
        }
    }
    Ok(())
}

/// Iterative Tarjan SCC; returns the component index of each node.
/// Trivial components (single node without a self-edge) still get unique
/// indices — membership equality is what matters.
fn tarjan_scc(succs: &[Vec<usize>]) -> Vec<usize> {
    let n = succs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Self-loop check matters for distinguishing `m -> m` from plain `m`.
    // (Components are compared for equality; a self-loop makes caller ==
    // target anyway, so nothing special is needed here.)
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // Frames: (node, next child index).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < succs[v].len() {
                let w = succs[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_finds_cycles() {
        // 0 -> 1 -> 2 -> 0 (one SCC), 3 -> 0 (own component).
        let succs = vec![vec![1], vec![2], vec![0], vec![0]];
        let comp = tarjan_scc(&succs);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
    }

    #[test]
    fn tarjan_handles_self_loops_and_isolated() {
        let succs = vec![vec![0], vec![], vec![1]];
        let comp = tarjan_scc(&succs);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[2]);
    }

    #[test]
    fn tarjan_two_disjoint_cycles() {
        let succs = vec![vec![1], vec![0], vec![3], vec![2]];
        let comp = tarjan_scc(&succs);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }
}
