//! Source locations for diagnostics.

/// A half-open byte range in the source text, with a precomputed
/// line/column of its start for cheap rendering.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// Merges two spans into the smallest span covering both; keeps the
    /// line/column of the earlier one.
    pub fn to(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_earliest_position() {
        let a = Span::new(0, 3, 1, 1);
        let b = Span::new(10, 12, 2, 4);
        let m = a.to(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 1);
        assert_eq!(b.to(a), m);
    }

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(0, 1, 7, 3).to_string(), "7:3");
    }
}
