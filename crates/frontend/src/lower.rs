//! Lowering: AST bodies → PAG edges + client metadata.
//!
//! Lowering is flow-insensitive (§2): control flow only determines
//! *which* statements exist, so `if`/`while` bodies are lowered
//! unconditionally. Every method gets a `this` formal (unless static), a
//! parameter variable per formal, and a single return variable that all
//! `return` statements feed — exactly the shape the paper's PAGs have
//! (Figure 2).
//!
//! Virtual calls cannot be resolved until a call graph exists, so they
//! are collected as [`PendingCall`]s; [`crate::callgraph`] turns them
//! into `entry`/`exit` edges under CHA or on-the-fly resolution.

use std::collections::HashMap;

use dynsum_pag::{
    CallSiteId, CastSite, ClassId, DerefSite, FactoryCandidate, MethodId, ProgramInfo, VarId,
};

use crate::ast::{ClassDecl, Expr, MethodDecl, Program, Stmt};
use crate::error::CompileError;
use crate::span::Span;
use crate::symbols::{MethodSym, Symbols, Ty};

/// A virtual call awaiting call-graph resolution.
#[derive(Debug, Clone)]
#[allow(dead_code)] // `caller` documents the site; recursion marking reads it from the PAG
pub(crate) struct PendingCall {
    /// The call site.
    pub site: CallSiteId,
    /// The calling method.
    pub caller: MethodId,
    /// Receiver variable (the dispatch is on its points-to set).
    pub recv: VarId,
    /// Static class of the receiver.
    pub static_class: ClassId,
    /// Method name.
    pub method: String,
    /// Pointer arguments (by position; `None` for non-pointer args).
    pub args: Vec<Option<VarId>>,
    /// Caller-side destination for the return value, if any.
    pub dst: Option<VarId>,
}

/// Result of lowering a whole program.
pub(crate) struct Lowered {
    /// Symbol tables (including the PAG builder with all local edges and
    /// all static-call edges already added).
    pub syms: Symbols,
    /// Virtual calls to resolve.
    pub pending: Vec<PendingCall>,
    /// Already-resolved call edges `(site, caller, callee)` — static
    /// calls and constructor invocations — needed for recursion
    /// detection.
    pub resolved_calls: Vec<(CallSiteId, MethodId, MethodId)>,
    /// Client metadata.
    pub info: ProgramInfo,
}

/// Lowers all method bodies.
pub(crate) fn lower(program: &Program, syms: Symbols) -> Result<Lowered, CompileError> {
    let mut lw = Lowerer {
        syms,
        pending: Vec::new(),
        resolved_calls: Vec::new(),
        info: ProgramInfo::default(),
        temp_counter: 0,
        site_counter: 0,
        obj_counter: 0,
    };

    // Collect method symbols up front: lowering needs `&mut self`.
    let mut todo: Vec<MethodSym> = lw.syms.methods.values().cloned().collect();
    todo.sort_by_key(|m| m.id);

    // Pass A: create every method's shell (this/params/ret variables) so
    // calls to not-yet-lowered methods can reference their formals.
    for sym in &todo {
        let (ci, mi) = sym.ast;
        let decl = &program.classes[ci].methods[mi];
        lw.declare_shell(decl, sym)?;
    }

    // Pass B: lower the bodies.
    for sym in &todo {
        let (ci, mi) = sym.ast;
        let class = &program.classes[ci];
        let decl = &class.methods[mi];
        lw.lower_method(class, decl, sym)?;
    }

    // Entry point: a static `main` anywhere (first match by class order).
    for c in &program.classes {
        if let Some(&cid) = lw.syms.classes.get(&c.name) {
            if let Some(m) = lw.syms.methods.get(&(cid, "main".to_owned())) {
                if m.is_static {
                    lw.info.entry = Some(m.id);
                    break;
                }
            }
        }
    }

    Ok(Lowered {
        syms: lw.syms,
        pending: lw.pending,
        resolved_calls: lw.resolved_calls,
        info: lw.info,
    })
}

struct Lowerer {
    syms: Symbols,
    pending: Vec<PendingCall>,
    resolved_calls: Vec<(CallSiteId, MethodId, MethodId)>,
    info: ProgramInfo,
    temp_counter: usize,
    site_counter: usize,
    obj_counter: usize,
}

/// Per-method lowering state.
struct MethodCx {
    method: MethodId,
    method_name: String,
    owner: ClassId,
    this: Option<VarId>,
    ret: Option<VarId>,
    scopes: Vec<HashMap<String, (VarId, Ty)>>,
}

impl MethodCx {
    fn lookup(&self, name: &str) -> Option<(VarId, Ty)> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }
}

/// A lowered expression value: the variable holding it (pointers only)
/// and its static type.
type Value = Option<(VarId, Ty)>;

impl Lowerer {
    fn err(span: Span, msg: impl Into<String>) -> CompileError {
        CompileError::new(span, msg)
    }

    fn loc(&self, cx: &MethodCx, span: Span) -> String {
        format!("{}:{}", cx.method_name, span)
    }

    fn fresh_temp(&mut self, cx: &MethodCx, ty: Ty, span: Span) -> Result<VarId, CompileError> {
        let name = format!("{}#t{}", cx.method_name, self.temp_counter);
        self.temp_counter += 1;
        self.syms
            .builder
            .add_local(&name, cx.method, ty)
            .map_err(|e| Self::err(span, e.to_string()))
    }

    fn fresh_site(&mut self, cx: &MethodCx, span: Span) -> Result<CallSiteId, CompileError> {
        let label = format!("{}@{}", self.site_counter, span);
        self.site_counter += 1;
        self.syms
            .builder
            .add_call_site(&label, cx.method)
            .map_err(|e| Self::err(span, e.to_string()))
    }

    // ---- method shells ------------------------------------------------------

    /// Creates the `this`, parameter and return variables of a method.
    fn declare_shell(&mut self, decl: &MethodDecl, sym: &MethodSym) -> Result<(), CompileError> {
        let method_name = self.method_pag_name(sym.id);
        if !sym.is_static {
            self.syms
                .builder
                .add_local(&format!("{method_name}#this"), sym.id, Some(sym.owner))
                .map_err(|e| Self::err(decl.span, e.to_string()))?;
        }
        for (i, p) in decl.params.iter().enumerate() {
            let ty = sym.params[i].1;
            self.syms
                .builder
                .add_local(&format!("{method_name}#{}", p.name), sym.id, ty)
                .map_err(|e| Self::err(p.span, e.to_string()))?;
        }
        if sym.returns_pointer {
            let ret = self
                .syms
                .builder
                .add_local(&format!("{method_name}#ret"), sym.id, sym.ret)
                .map_err(|e| Self::err(decl.span, e.to_string()))?;
            self.info.factories.push(FactoryCandidate {
                method: sym.id,
                ret,
            });
        }
        Ok(())
    }

    fn lower_method(
        &mut self,
        _class: &ClassDecl,
        decl: &MethodDecl,
        sym: &MethodSym,
    ) -> Result<(), CompileError> {
        let method_name = self.method_pag_name(sym.id);

        let mut cx = MethodCx {
            method: sym.id,
            method_name: method_name.clone(),
            owner: sym.owner,
            this: self.syms.builder.find_var(&format!("{method_name}#this")),
            ret: self.syms.builder.find_var(&format!("{method_name}#ret")),
            scopes: vec![HashMap::new()],
        };
        for (i, p) in decl.params.iter().enumerate() {
            let ty = sym.params[i].1;
            let var = self
                .syms
                .builder
                .find_var(&format!("{method_name}#{}", p.name))
                .expect("shell pass declared every parameter");
            cx.scopes[0].insert(p.name.clone(), (var, ty));
        }

        self.lower_block(&mut cx, &decl.body)?;
        Ok(())
    }

    // ---- statements -----------------------------------------------------------

    fn lower_block(&mut self, cx: &mut MethodCx, stmts: &[Stmt]) -> Result<(), CompileError> {
        cx.scopes.push(HashMap::new());
        for s in stmts {
            self.lower_stmt(cx, s)?;
        }
        cx.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, cx: &mut MethodCx, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::VarDecl {
                ty,
                name,
                init,
                span,
            } => {
                let rty = self.syms.resolve_ty(ty)?;
                if cx.scopes.last().unwrap().contains_key(name) {
                    return Err(Self::err(
                        *span,
                        format!("variable `{name}` is already declared in this scope"),
                    ));
                }
                let suffix = if cx.lookup(name).is_some() {
                    format!("${}", self.temp_counter)
                } else {
                    String::new()
                };
                let var = self
                    .syms
                    .builder
                    .add_local(
                        &format!("{}#{}{}", cx.method_name, name, suffix),
                        cx.method,
                        rty,
                    )
                    .map_err(|e| Self::err(*span, e.to_string()))?;
                self.temp_counter += 1;
                cx.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), (var, rty));
                if let Some(e) = init {
                    let v = self.lower_expr(cx, e)?;
                    self.assign_into(cx, var, v, *span)?;
                }
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                span,
            } => self.lower_assign(cx, target, value, *span),
            Stmt::Expr(e) => {
                self.lower_expr(cx, e)?;
                Ok(())
            }
            Stmt::Return { value, span } => {
                if let Some(e) = value {
                    let v = self.lower_expr(cx, e)?;
                    if let Some(ret) = cx.ret {
                        self.assign_into(cx, ret, v, *span)?;
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.lower_expr(cx, cond)?;
                self.lower_block(cx, then_branch)?;
                self.lower_block(cx, else_branch)?;
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.lower_expr(cx, cond)?;
                self.lower_block(cx, body)?;
                Ok(())
            }
        }
    }

    /// `dst = value` when the value is a pointer; non-pointer values add
    /// no edges.
    fn assign_into(
        &mut self,
        _cx: &MethodCx,
        dst: VarId,
        value: Value,
        span: Span,
    ) -> Result<(), CompileError> {
        if let Some((src, _)) = value {
            self.syms
                .builder
                .add_assign(src, dst)
                .map_err(|e| Self::err(span, e.to_string()))?;
        }
        Ok(())
    }

    fn lower_assign(
        &mut self,
        cx: &mut MethodCx,
        target: &Expr,
        value: &Expr,
        span: Span,
    ) -> Result<(), CompileError> {
        match target {
            // `x = e` — local, or implicit `this.f`, or own static.
            Expr::Name { name, span: nspan } => {
                if let Some((var, _)) = cx.lookup(name) {
                    let v = self.lower_expr(cx, value)?;
                    return self.assign_into(cx, var, v, span);
                }
                if cx.this.is_some() && self.syms.instance_field(cx.owner, name).is_some() {
                    let this = cx.this.unwrap();
                    let field = self.syms.builder.field(name);
                    let v = self.lower_expr(cx, value)?;
                    if let Some((src, _)) = v {
                        self.syms
                            .builder
                            .add_store(field, src, this)
                            .map_err(|e| Self::err(span, e.to_string()))?;
                    }
                    return Ok(());
                }
                if let Some((gvar, _)) = self.syms.static_field(cx.owner, name) {
                    let v = self.lower_expr(cx, value)?;
                    if let Some((src, _)) = v {
                        self.syms
                            .builder
                            .add_assign(src, gvar)
                            .map_err(|e| Self::err(span, e.to_string()))?;
                    }
                    return Ok(());
                }
                Err(Self::err(*nspan, format!("unknown variable `{name}`")))
            }
            // `e.f = v` — instance store, or static store `C.f = v`.
            Expr::Field {
                base,
                field,
                span: fspan,
            } => {
                if let Some((gvar, _)) = self.try_static_field(cx, base, field) {
                    let v = self.lower_expr(cx, value)?;
                    if let Some((src, _)) = v {
                        self.syms
                            .builder
                            .add_assign(src, gvar)
                            .map_err(|e| Self::err(span, e.to_string()))?;
                    }
                    return Ok(());
                }
                let Some((bvar, bty)) = self.lower_expr(cx, base)? else {
                    return Err(Self::err(*fspan, "cannot store through a non-pointer"));
                };
                self.record_deref(cx, bvar, *fspan);
                let Some(bclass) = bty else {
                    return Err(Self::err(*fspan, "cannot store through `int`"));
                };
                if self.syms.instance_field(bclass, field).is_none() {
                    return Err(Self::err(
                        *fspan,
                        format!(
                            "class `{}` has no field `{field}`",
                            self.syms.builder.hierarchy().name(bclass)
                        ),
                    ));
                }
                let fid = self.syms.builder.field(field);
                let v = self.lower_expr(cx, value)?;
                if let Some((src, _)) = v {
                    self.syms
                        .builder
                        .add_store(fid, src, bvar)
                        .map_err(|e| Self::err(span, e.to_string()))?;
                }
                Ok(())
            }
            // `a[i] = v` — array store on the collapsed `arr` field.
            Expr::Index {
                base,
                index,
                span: ispan,
            } => {
                let Some((bvar, _)) = self.lower_expr(cx, base)? else {
                    return Err(Self::err(*ispan, "cannot index a non-pointer"));
                };
                self.record_deref(cx, bvar, *ispan);
                self.lower_expr(cx, index)?;
                let arr = self.syms.builder.array_field();
                let v = self.lower_expr(cx, value)?;
                if let Some((src, _)) = v {
                    self.syms
                        .builder
                        .add_store(arr, src, bvar)
                        .map_err(|e| Self::err(span, e.to_string()))?;
                }
                Ok(())
            }
            other => Err(Self::err(
                other.span(),
                "invalid assignment target (expected a variable, field or array element)",
            )),
        }
    }

    // ---- expressions ------------------------------------------------------------

    /// When `base.field` is really `Class.static_field`, returns the
    /// global variable.
    fn try_static_field(&mut self, cx: &MethodCx, base: &Expr, field: &str) -> Option<(VarId, Ty)> {
        let Expr::Name { name, .. } = base else {
            return None;
        };
        if cx.lookup(name).is_some() {
            return None; // a local shadows the class name
        }
        let &class = self.syms.classes.get(name)?;
        self.syms.static_field(class, field)
    }

    fn record_deref(&mut self, cx: &MethodCx, base: VarId, span: Span) {
        self.info.derefs.push(DerefSite {
            base,
            location: self.loc(cx, span),
        });
    }

    fn lower_expr(&mut self, cx: &mut MethodCx, e: &Expr) -> Result<Value, CompileError> {
        match e {
            Expr::Int { .. } => Ok(None),
            Expr::Binary { lhs, rhs, .. } => {
                self.lower_expr(cx, lhs)?;
                self.lower_expr(cx, rhs)?;
                Ok(None)
            }
            Expr::Unary { expr, .. } => {
                self.lower_expr(cx, expr)?;
                Ok(None)
            }
            Expr::This { span } => match cx.this {
                Some(v) => Ok(Some((v, Some(cx.owner)))),
                None => Err(Self::err(
                    *span,
                    "`this` is not available in a static method",
                )),
            },
            Expr::Null { span } => {
                let label = format!("null{}@{}", self.obj_counter, span);
                self.obj_counter += 1;
                let obj = self
                    .syms
                    .builder
                    .add_null_obj(&label, Some(cx.method))
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                let tmp = self.fresh_temp(cx, None, *span)?;
                self.syms
                    .builder
                    .add_new(obj, tmp)
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                Ok(Some((tmp, None)))
            }
            Expr::Str { span, .. } => {
                let label = format!("str{}@{}", self.obj_counter, span);
                self.obj_counter += 1;
                let sc = self.syms.string_class;
                let obj = self
                    .syms
                    .builder
                    .add_obj(&label, Some(sc), Some(cx.method))
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                let tmp = self.fresh_temp(cx, Some(sc), *span)?;
                self.syms
                    .builder
                    .add_new(obj, tmp)
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                Ok(Some((tmp, Some(sc))))
            }
            Expr::Name { name, span } => {
                if let Some((var, ty)) = cx.lookup(name) {
                    return Ok(Some((var, ty)));
                }
                // Implicit `this.f`.
                if let Some(this) = cx.this {
                    if let Some(fty) = self.syms.instance_field(cx.owner, name) {
                        let fid = self.syms.builder.field(name);
                        let tmp = self.fresh_temp(cx, fty, *span)?;
                        self.record_deref(cx, this, *span);
                        self.syms
                            .builder
                            .add_load(fid, this, tmp)
                            .map_err(|er| Self::err(*span, er.to_string()))?;
                        return Ok(Some((tmp, fty)));
                    }
                }
                // Own static field.
                if let Some((gvar, ty)) = self.syms.static_field(cx.owner, name) {
                    return Ok(Some((gvar, ty)));
                }
                Err(Self::err(*span, format!("unknown variable `{name}`")))
            }
            Expr::New { class, args, span } => self.lower_new(cx, class, args, *span),
            Expr::NewArray { elem, len, span } => {
                self.lower_expr(cx, len)?;
                let elem_ty: Ty = if elem == "int" {
                    None
                } else {
                    match self.syms.classes.get(elem) {
                        Some(&c) => Some(c),
                        None => return Err(Self::err(*span, format!("unknown class `{elem}`"))),
                    }
                };
                let arr_class = self.syms.array_class(elem, elem_ty, *span)?;
                let label = format!("arr{}@{}", self.obj_counter, span);
                self.obj_counter += 1;
                let obj = self
                    .syms
                    .builder
                    .add_obj(&label, Some(arr_class), Some(cx.method))
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                let tmp = self.fresh_temp(cx, Some(arr_class), *span)?;
                self.syms
                    .builder
                    .add_new(obj, tmp)
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                Ok(Some((tmp, Some(arr_class))))
            }
            Expr::Cast { ty, expr, span } => {
                let rty = self.syms.resolve_ty(ty)?;
                let v = self.lower_expr(cx, expr)?;
                let Some(target) = rty else {
                    // (int) e: non-pointer result.
                    return Ok(None);
                };
                let tmp = self.fresh_temp(cx, Some(target), *span)?;
                if let Some((src, _)) = v {
                    self.syms
                        .builder
                        .add_assign(src, tmp)
                        .map_err(|er| Self::err(*span, er.to_string()))?;
                }
                self.info.casts.push(CastSite {
                    var: tmp,
                    target,
                    location: self.loc(cx, *span),
                });
                Ok(Some((tmp, Some(target))))
            }
            Expr::Field { base, field, span } => {
                if let Some((gvar, ty)) = self.try_static_field(cx, base, field) {
                    return Ok(Some((gvar, ty)));
                }
                let Some((bvar, bty)) = self.lower_expr(cx, base)? else {
                    return Err(Self::err(*span, "cannot load from a non-pointer"));
                };
                self.record_deref(cx, bvar, *span);
                let Some(bclass) = bty else {
                    return Err(Self::err(*span, "cannot load from `int`"));
                };
                let Some(fty) = self.syms.instance_field(bclass, field) else {
                    return Err(Self::err(
                        *span,
                        format!(
                            "class `{}` has no field `{field}`",
                            self.syms.builder.hierarchy().name(bclass)
                        ),
                    ));
                };
                let fid = self.syms.builder.field(field);
                let tmp = self.fresh_temp(cx, fty, *span)?;
                self.syms
                    .builder
                    .add_load(fid, bvar, tmp)
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                Ok(Some((tmp, fty)))
            }
            Expr::Index { base, index, span } => {
                let Some((bvar, bty)) = self.lower_expr(cx, base)? else {
                    return Err(Self::err(*span, "cannot index a non-pointer"));
                };
                self.record_deref(cx, bvar, *span);
                self.lower_expr(cx, index)?;
                let elem_ty = bty
                    .and_then(|c| self.syms.elem_of.get(&c).copied())
                    .unwrap_or(None);
                if elem_ty.is_none() {
                    // Array of int (or unknown): the load carries no
                    // pointer, but the arr field keeps flows uniform.
                }
                let arr = self.syms.builder.array_field();
                let tmp = self.fresh_temp(cx, elem_ty, *span)?;
                self.syms
                    .builder
                    .add_load(arr, bvar, tmp)
                    .map_err(|er| Self::err(*span, er.to_string()))?;
                Ok(Some((tmp, elem_ty)))
            }
            Expr::Call {
                base,
                method,
                args,
                span,
            } => self.lower_call(cx, base.as_deref(), method, args, *span),
        }
    }

    fn lower_new(
        &mut self,
        cx: &mut MethodCx,
        class: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<Value, CompileError> {
        let Some(&cid) = self.syms.classes.get(class) else {
            return Err(Self::err(span, format!("unknown class `{class}`")));
        };
        let label = format!("o{}@{}", self.obj_counter, span);
        self.obj_counter += 1;
        let obj = self
            .syms
            .builder
            .add_obj(&label, Some(cid), Some(cx.method))
            .map_err(|e| Self::err(span, e.to_string()))?;
        let tmp = self.fresh_temp(cx, Some(cid), span)?;
        self.syms
            .builder
            .add_new(obj, tmp)
            .map_err(|e| Self::err(span, e.to_string()))?;

        // Constructor invocation (not inherited: looked up on the exact
        // class only).
        let ctor = self.syms.methods.get(&(cid, "<init>".to_owned())).cloned();
        match ctor {
            Some(ctor) => {
                if ctor.params.len() != args.len() {
                    return Err(Self::err(
                        span,
                        format!(
                            "constructor `{class}` expects {} argument(s), got {}",
                            ctor.params.len(),
                            args.len()
                        ),
                    ));
                }
                let mut arg_vars = Vec::new();
                for a in args {
                    arg_vars.push(self.lower_expr(cx, a)?);
                }
                let site = self.fresh_site(cx, span)?;
                let ctor_this = self.this_var_of(ctor.id);
                self.syms
                    .builder
                    .add_entry(site, tmp, ctor_this)
                    .map_err(|e| Self::err(span, e.to_string()))?;
                for (i, av) in arg_vars.iter().enumerate() {
                    if let Some((avar, _)) = av {
                        let formal = self.param_var_of(ctor.id, &ctor.params[i].0);
                        if let Some(formal) = formal {
                            self.syms
                                .builder
                                .add_entry(site, *avar, formal)
                                .map_err(|e| Self::err(span, e.to_string()))?;
                        }
                    }
                }
                self.resolved_calls.push((site, cx.method, ctor.id));
            }
            None => {
                if !args.is_empty() {
                    return Err(Self::err(
                        span,
                        format!("class `{class}` has no constructor but arguments were given"),
                    ));
                }
                for a in args {
                    self.lower_expr(cx, a)?;
                }
            }
        }
        Ok(Some((tmp, Some(cid))))
    }

    /// The `this` variable of a method (the shell pass created it).
    fn this_var_of(&mut self, method: MethodId) -> VarId {
        let name = format!("{}#this", self.method_pag_name(method));
        self.syms
            .builder
            .find_var(&name)
            .expect("instance methods always have a this variable")
    }

    fn param_var_of(&mut self, method: MethodId, param: &str) -> Option<VarId> {
        let name = format!("{}#{}", self.method_pag_name(method), param);
        self.syms.builder.find_var(&name)
    }

    fn ret_var_of(&mut self, method: MethodId) -> Option<VarId> {
        let name = format!("{}#ret", self.method_pag_name(method));
        self.syms.builder.find_var(&name)
    }

    fn method_pag_name(&self, method: MethodId) -> String {
        self.syms
            .builder
            .method_name(method)
            .expect("method was declared")
            .to_owned()
    }

    fn lower_call(
        &mut self,
        cx: &mut MethodCx,
        base: Option<&Expr>,
        method: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<Value, CompileError> {
        // Static call `C.m(args)`?
        if let Some(Expr::Name { name, .. }) = base {
            if cx.lookup(name).is_none() {
                if let Some(&class) = self.syms.classes.get(name) {
                    let Some(sym) = self.syms.lookup_method(class, method).cloned() else {
                        return Err(Self::err(
                            span,
                            format!("class `{name}` has no method `{method}`"),
                        ));
                    };
                    if !sym.is_static {
                        return Err(Self::err(
                            span,
                            format!("method `{name}.{method}` is not static"),
                        ));
                    }
                    return self.emit_direct_call(cx, &sym, None, args, span);
                }
            }
        }

        // Receiver expression (explicit or implicit `this`).
        let (recv, recv_ty) = match base {
            Some(b) => {
                let Some(v) = self.lower_expr(cx, b)? else {
                    return Err(Self::err(span, "cannot call a method on a non-pointer"));
                };
                v
            }
            None => {
                // Unqualified `m(args)`: own instance method or own
                // static method.
                if let Some(sym) = self.syms.lookup_method(cx.owner, method).cloned() {
                    if sym.is_static {
                        return self.emit_direct_call(cx, &sym, None, args, span);
                    }
                }
                match cx.this {
                    Some(t) => (t, Some(cx.owner)),
                    None => {
                        return Err(Self::err(
                            span,
                            format!("cannot call instance method `{method}` from a static context"),
                        ))
                    }
                }
            }
        };
        self.record_deref(cx, recv, span);
        let Some(static_class) = recv_ty else {
            return Err(Self::err(span, "cannot call a method on `int`"));
        };
        let Some(sym) = self.syms.lookup_method(static_class, method).cloned() else {
            return Err(Self::err(
                span,
                format!(
                    "class `{}` has no method `{method}`",
                    self.syms.builder.hierarchy().name(static_class)
                ),
            ));
        };
        if sym.is_static {
            // Instance-syntax call to a static method: treat as direct.
            return self.emit_direct_call(cx, &sym, None, args, span);
        }
        if sym.params.len() != args.len() {
            return Err(Self::err(
                span,
                format!(
                    "method `{method}` expects {} argument(s), got {}",
                    sym.params.len(),
                    args.len()
                ),
            ));
        }

        let mut arg_vars = Vec::new();
        for a in args {
            arg_vars.push(self.lower_expr(cx, a)?.map(|(v, _)| v));
        }
        let dst = if sym.returns_pointer {
            Some(self.fresh_temp(cx, sym.ret, span)?)
        } else {
            None
        };
        let site = self.fresh_site(cx, span)?;
        self.pending.push(PendingCall {
            site,
            caller: cx.method,
            recv,
            static_class,
            method: method.to_owned(),
            args: arg_vars,
            dst,
        });
        Ok(dst.map(|d| (d, sym.ret)))
    }

    /// Emits entry/exit edges for a statically resolved (non-virtual)
    /// call.
    fn emit_direct_call(
        &mut self,
        cx: &mut MethodCx,
        sym: &MethodSym,
        this_arg: Option<VarId>,
        args: &[Expr],
        span: Span,
    ) -> Result<Value, CompileError> {
        if sym.params.len() != args.len() {
            return Err(Self::err(
                span,
                format!(
                    "method expects {} argument(s), got {}",
                    sym.params.len(),
                    args.len()
                ),
            ));
        }
        let mut arg_vars = Vec::new();
        for a in args {
            arg_vars.push(self.lower_expr(cx, a)?);
        }
        let site = self.fresh_site(cx, span)?;
        if let Some(t) = this_arg {
            let callee_this = self.this_var_of(sym.id);
            self.syms
                .builder
                .add_entry(site, t, callee_this)
                .map_err(|e| Self::err(span, e.to_string()))?;
        }
        for (i, av) in arg_vars.iter().enumerate() {
            if let Some((avar, _)) = av {
                if let Some(formal) = self.param_var_of(sym.id, &sym.params[i].0) {
                    self.syms
                        .builder
                        .add_entry(site, *avar, formal)
                        .map_err(|e| Self::err(span, e.to_string()))?;
                }
            }
        }
        let dst = if sym.returns_pointer {
            let d = self.fresh_temp(cx, sym.ret, span)?;
            if let Some(ret) = self.ret_var_of(sym.id) {
                self.syms
                    .builder
                    .add_exit(site, ret, d)
                    .map_err(|e| Self::err(span, e.to_string()))?;
            }
            Some((d, sym.ret))
        } else {
            None
        };
        self.resolved_calls.push((site, cx.method, sym.id));
        Ok(dst)
    }
}
