//! Recursive-descent parser for the Java subset.

use crate::ast::*;
use crate::error::CompileError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a compilation unit.
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered.
pub fn parse(tokens: Vec<Token>) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let i = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, CompileError> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(CompileError::new(
                self.span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok((name, t.span))
            }
            other => Err(CompileError::new(
                self.span(),
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    // ---- declarations -----------------------------------------------------

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut classes = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            classes.push(self.class_decl()?);
        }
        Ok(Program { classes })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, CompileError> {
        let start = self.span();
        self.expect(TokenKind::Class)?;
        let (name, _) = self.expect_ident("class name")?;
        let superclass = if self.eat(&TokenKind::Extends) {
            Some(self.expect_ident("superclass name")?.0)
        } else {
            None
        };
        self.expect(TokenKind::LBrace)?;
        let mut decl = ClassDecl {
            name: name.clone(),
            superclass,
            fields: Vec::new(),
            statics: Vec::new(),
            methods: Vec::new(),
            span: start,
        };
        while !self.eat(&TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(CompileError::new(
                    self.span(),
                    format!("unterminated body of class `{name}`"),
                ));
            }
            self.member(&mut decl)?;
        }
        Ok(decl)
    }

    fn member(&mut self, class: &mut ClassDecl) -> Result<(), CompileError> {
        let is_static = self.eat(&TokenKind::Static);

        // Constructor: `Name ( ... ) { ... }` where Name == class name.
        if let TokenKind::Ident(n) = self.peek() {
            if n == &class.name && matches!(self.peek_at(1), TokenKind::LParen) {
                if is_static {
                    return Err(CompileError::new(
                        self.span(),
                        "constructors cannot be static",
                    ));
                }
                let span = self.span();
                let (name, _) = self.expect_ident("constructor name")?;
                let params = self.params()?;
                let body = self.block()?;
                class.methods.push(MethodDecl {
                    name,
                    return_type: None,
                    is_static: false,
                    is_ctor: true,
                    params,
                    body,
                    span,
                });
                return Ok(());
            }
        }

        // `void m(...) {...}` or `T m(...) {...}` or `T f;`
        let span = self.span();
        let return_type = if self.eat(&TokenKind::Void) {
            None
        } else {
            Some(self.type_ref()?)
        };
        let (name, _) = self.expect_ident("member name")?;
        if matches!(self.peek(), TokenKind::LParen) {
            let params = self.params()?;
            let body = self.block()?;
            class.methods.push(MethodDecl {
                name,
                return_type,
                is_static,
                is_ctor: false,
                params,
                body,
                span,
            });
        } else {
            let ty = return_type
                .ok_or_else(|| CompileError::new(span, "fields cannot have type `void`"))?;
            self.expect(TokenKind::Semi)?;
            let field = FieldDecl { name, ty, span };
            if is_static {
                class.statics.push(field);
            } else {
                class.fields.push(field);
            }
        }
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<ParamDecl>, CompileError> {
        self.expect(TokenKind::LParen)?;
        let mut out = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let span = self.span();
                let ty = self.type_ref()?;
                let (name, _) = self.expect_ident("parameter name")?;
                out.push(ParamDecl { name, ty, span });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(out)
    }

    fn type_ref(&mut self) -> Result<TypeRef, CompileError> {
        let span = self.span();
        let (name, _) = self.expect_ident("type name")?;
        let array = if matches!(self.peek(), TokenKind::LBracket)
            && matches!(self.peek_at(1), TokenKind::RBracket)
        {
            self.bump();
            self.bump();
            true
        } else {
            false
        };
        Ok(TypeRef { name, array, span })
    }

    // ---- statements ---------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(TokenKind::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(CompileError::new(self.span(), "unterminated block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        match self.peek() {
            TokenKind::Return => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_branch = self.stmt_or_block()?;
                let else_branch = if self.eat(&TokenKind::Else) {
                    self.stmt_or_block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.stmt_or_block()?;
                Ok(Stmt::While { cond, body, span })
            }
            // Local declaration: `T x ...` or `T[] x ...`.
            TokenKind::Ident(_)
                if matches!(self.peek_at(1), TokenKind::Ident(_))
                    || (matches!(self.peek_at(1), TokenKind::LBracket)
                        && matches!(self.peek_at(2), TokenKind::RBracket)) =>
            {
                let ty = self.type_ref()?;
                let (name, _) = self.expect_ident("variable name")?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::VarDecl {
                    ty,
                    name,
                    init,
                    span,
                })
            }
            _ => {
                let e = self.expr()?;
                if self.eat(&TokenKind::Assign) {
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Assign {
                        target: e,
                        value,
                        span,
                    })
                } else {
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    // ---- expressions ----------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.equality()
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => "==",
                TokenKind::NotEq => "!=",
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                lhs: Box::new(lhs),
                op,
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => "<",
                TokenKind::Gt => ">",
                TokenKind::Le => "<=",
                TokenKind::Ge => ">=",
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                lhs: Box::new(lhs),
                op,
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => "+",
                TokenKind::Minus => "-",
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                lhs: Box::new(lhs),
                op,
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => "*",
                TokenKind::Slash => "/",
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                lhs: Box::new(lhs),
                op,
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        let op = match self.peek() {
            TokenKind::Bang => Some("!"),
            TokenKind::Minus => Some("-"),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
                span,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let (name, nspan) = self.expect_ident("member name")?;
                    if matches!(self.peek(), TokenKind::LParen) {
                        let args = self.args()?;
                        let span = e.span().to(nspan);
                        e = Expr::Call {
                            base: Some(Box::new(e)),
                            method: name,
                            args,
                            span,
                        };
                    } else {
                        let span = e.span().to(nspan);
                        e = Expr::Field {
                            base: Box::new(e),
                            field: name,
                            span,
                        };
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    let span = e.span().to(index.span());
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>, CompileError> {
        self.expect(TokenKind::LParen)?;
        let mut out = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                out.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(out)
    }

    /// `true` when the current token can begin a cast operand.
    fn starts_cast_operand(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Ident(_)
                | TokenKind::This
                | TokenKind::Null
                | TokenKind::New
                | TokenKind::Str(_)
                | TokenKind::LParen
        )
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::Int { value, span })
            }
            TokenKind::Str(value) => {
                self.bump();
                Ok(Expr::Str { value, span })
            }
            TokenKind::This => {
                self.bump();
                Ok(Expr::This { span })
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Null { span })
            }
            TokenKind::New => {
                self.bump();
                let (class, _) = self.expect_ident("class name after `new`")?;
                if self.eat(&TokenKind::LBracket) {
                    let len = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    Ok(Expr::NewArray {
                        elem: class,
                        len: Box::new(len),
                        span,
                    })
                } else {
                    let args = self.args()?;
                    Ok(Expr::New { class, args, span })
                }
            }
            TokenKind::LParen => {
                // Cast heuristic: `(T) e` / `(T[]) e` when what follows the
                // closing paren can start an operand; otherwise grouping.
                if let TokenKind::Ident(_) = self.peek_at(1) {
                    let is_array = matches!(self.peek_at(2), TokenKind::LBracket)
                        && matches!(self.peek_at(3), TokenKind::RBracket);
                    let close_at = if is_array { 4 } else { 2 };
                    if matches!(self.peek_at(close_at), TokenKind::RParen) {
                        let save = self.pos;
                        self.bump(); // (
                        let ty = self.type_ref()?;
                        self.expect(TokenKind::RParen)?;
                        if self.starts_cast_operand() {
                            let expr = self.unary()?;
                            return Ok(Expr::Cast {
                                ty,
                                expr: Box::new(expr),
                                span,
                            });
                        }
                        self.pos = save;
                    }
                }
                self.bump(); // (
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if matches!(self.peek(), TokenKind::LParen) {
                    let args = self.args()?;
                    Ok(Expr::Call {
                        base: None,
                        method: name,
                        args,
                        span,
                    })
                } else {
                    Ok(Expr::Name { name, span })
                }
            }
            other => Err(CompileError::new(
                span,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_class_with_members() {
        let p = parse_src(
            "class Vector { Object[] elems; int count; static Vector shared; \
             Vector() { } void add(Object p) { } Object get(int i) { return null; } }",
        );
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.fields.len(), 2);
        assert_eq!(c.statics.len(), 1);
        assert_eq!(c.methods.len(), 3);
        assert!(c.methods[0].is_ctor);
        assert!(c.fields[0].ty.array);
    }

    #[test]
    fn parses_inheritance() {
        let p = parse_src("class A {} class B extends A {}");
        assert_eq!(p.classes[1].superclass.as_deref(), Some("A"));
    }

    #[test]
    fn parses_statements() {
        let p = parse_src(
            "class M { void m(Object p) { \
               Object t = p; t = this.f; this.f = t; t.g(p); \
               if (t == null) { t = p; } else t = p; \
               while (1 < 2) { t = p; } \
               return; } }",
        );
        let body = &p.classes[0].methods[0].body;
        assert_eq!(body.len(), 7);
        assert!(matches!(body[0], Stmt::VarDecl { .. }));
        assert!(matches!(body[4], Stmt::If { .. }));
        assert!(matches!(body[5], Stmt::While { .. }));
    }

    #[test]
    fn parses_cast() {
        let p = parse_src("class M { void m(Object p) { String s = (String) p; } }");
        let Stmt::VarDecl { init: Some(e), .. } = &p.classes[0].methods[0].body[0] else {
            panic!("expected decl");
        };
        assert!(matches!(e, Expr::Cast { .. }));
    }

    #[test]
    fn grouping_is_not_cast() {
        // `(a) + 1` groups; `+` cannot start a cast operand.
        let p = parse_src("class M { void m(int a) { int b = (a) + 1; } }");
        let Stmt::VarDecl { init: Some(e), .. } = &p.classes[0].methods[0].body[0] else {
            panic!("expected decl");
        };
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn parses_array_ops_and_calls() {
        let p = parse_src(
            "class M { Object m(Vector v, int i) { \
               Object[] a = new Object[8]; a[i] = v.get(i); return a[0]; } }",
        );
        let body = &p.classes[0].methods[0].body;
        assert!(matches!(
            &body[1],
            Stmt::Assign {
                target: Expr::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_static_calls_and_fields() {
        let p =
            parse_src("class M { void m() { Object t = Registry.lookup(); Registry.cache = t; } }");
        let body = &p.classes[0].methods[0].body;
        assert!(matches!(
            &body[0],
            Stmt::VarDecl {
                init: Some(Expr::Call { base: Some(_), .. }),
                ..
            }
        ));
        assert!(matches!(
            &body[1],
            Stmt::Assign {
                target: Expr::Field { .. },
                ..
            }
        ));
    }

    #[test]
    fn error_messages_carry_location() {
        let e = parse(lex("class A { void m() { return }").unwrap()).unwrap_err();
        assert!(e.message.contains("expected"));
        assert!(e.span.line >= 1);
    }

    #[test]
    fn unterminated_class_reports_nicely() {
        let e = parse(lex("class A { void m() {} ").unwrap()).unwrap_err();
        assert!(e.message.contains("unterminated body"));
    }
}
