//! # dynsum-frontend — a Java-subset compiler targeting PAGs
//!
//! The paper's toolchain obtains Pointer Assignment Graphs from
//! Soot/Spark; this crate is the reproduction's frontend substrate: it
//! lexes, parses, resolves and lowers a Java subset into the
//! [`dynsum_pag`] representation, constructs the call graph (CHA or
//! on-the-fly via Andersen-style analysis, like Spark), collapses
//! recursion cycles, and emits the client metadata (`SafeCast` downcast
//! sites, `NullDeref` dereference sites, `FactoryM` candidates).
//!
//! ## The language
//!
//! Classes with single inheritance; instance fields, static fields
//! (globals), instance/static methods and constructors; statements
//! `T x = e;`, assignments to locals/fields/array elements/statics,
//! `return`, `if`/`else`, `while` (control flow is parsed but ignored —
//! the analysis is flow-insensitive, §2); expressions `new C(args)`,
//! `new T[n]`, `(T) e` casts, field loads, array indexing (collapsed to
//! the `arr` field), virtual/static calls, `this`, `null`, string and
//! int literals, arithmetic/comparison operators (non-pointer).
//!
//! ## Quickstart
//!
//! ```
//! use dynsum_frontend::compile;
//!
//! let source = r#"
//!     class Box {
//!         Object item;
//!         void put(Object x) { this.item = x; }
//!         Object take() { return this.item; }
//!     }
//!     class Main {
//!         static void main() {
//!             Box b = new Box();
//!             b.put(new Main());
//!             Object got = b.take();
//!         }
//!     }
//! "#;
//! let compiled = compile(source)?;
//! assert!(compiled.pag.find_method("Box.put").is_some());
//! assert!(compiled.pag.find_var("Main.main#got").is_some());
//! # Ok::<(), dynsum_frontend::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod callgraph;
mod error;
mod lexer;
mod lower;
mod parser;
pub mod pretty;
mod span;
mod symbols;
mod token;

use dynsum_pag::{Pag, ProgramInfo};

pub use callgraph::CallGraphMode;
pub use error::CompileError;
pub use lexer::lex;
pub use parser::parse;
pub use span::Span;
pub use token::{Token, TokenKind};

/// A compiled program: the PAG plus client metadata.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The Pointer Assignment Graph.
    pub pag: Pag,
    /// Downcast/dereference/factory sites for the evaluation clients.
    pub info: ProgramInfo,
}

/// Compiles source text with the default (on-the-fly) call graph.
///
/// # Errors
///
/// Returns the first [`CompileError`] (lexical, syntactic or semantic).
pub fn compile(source: &str) -> Result<CompiledProgram, CompileError> {
    compile_with(source, CallGraphMode::OnTheFly)
}

/// Compiles source text with an explicit call-graph mode.
///
/// # Errors
///
/// Returns the first [`CompileError`] (lexical, syntactic or semantic).
pub fn compile_with(source: &str, mode: CallGraphMode) -> Result<CompiledProgram, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(tokens)?;
    let syms = symbols::Symbols::declare(&program)?;
    let mut lowered = lower::lower(&program, syms)?;
    callgraph::resolve_calls(&mut lowered, mode)?;
    Ok(CompiledProgram {
        pag: lowered.syms.builder.finish(),
        info: lowered.info,
    })
}
