//! AST pretty-printer.
//!
//! Renders a parsed [`Program`] back to canonical source text. Printing
//! is *stable*: `print ∘ parse ∘ print == print`, which the test suite
//! uses to validate the parser's precedence and associativity handling
//! (any mismatch between how an expression is printed and re-parsed
//! shows up as a fixed-point violation).

use crate::ast::*;

/// Pretty-prints a whole program in canonical formatting.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, c) in p.classes.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_class(c, &mut out);
    }
    out
}

fn print_class(c: &ClassDecl, out: &mut String) {
    out.push_str("class ");
    out.push_str(&c.name);
    if let Some(sup) = &c.superclass {
        out.push_str(" extends ");
        out.push_str(sup);
    }
    out.push_str(" {\n");
    for f in &c.statics {
        out.push_str(&format!("    static {} {};\n", f.ty.display(), f.name));
    }
    for f in &c.fields {
        out.push_str(&format!("    {} {};\n", f.ty.display(), f.name));
    }
    for m in &c.methods {
        print_method(m, out);
    }
    out.push_str("}\n");
}

fn print_method(m: &MethodDecl, out: &mut String) {
    out.push_str("    ");
    if m.is_static {
        out.push_str("static ");
    }
    if !m.is_ctor {
        match &m.return_type {
            Some(t) => {
                out.push_str(&t.display());
                out.push(' ');
            }
            None => out.push_str("void "),
        }
    }
    out.push_str(&m.name);
    out.push('(');
    for (i, p) in m.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{} {}", p.ty.display(), p.name));
    }
    out.push_str(") {\n");
    for s in &m.body {
        print_stmt(s, out, 2);
    }
    out.push_str("    }\n");
}

fn print_stmt(s: &Stmt, out: &mut String, depth: usize) {
    let pad = "    ".repeat(depth);
    match s {
        Stmt::VarDecl { ty, name, init, .. } => {
            out.push_str(&pad);
            out.push_str(&ty.display());
            out.push(' ');
            out.push_str(name);
            if let Some(e) = init {
                out.push_str(" = ");
                print_expr(e, out, 0);
            }
            out.push_str(";\n");
        }
        Stmt::Assign { target, value, .. } => {
            out.push_str(&pad);
            print_expr(target, out, 0);
            out.push_str(" = ");
            print_expr(value, out, 0);
            out.push_str(";\n");
        }
        Stmt::Expr(e) => {
            out.push_str(&pad);
            print_expr(e, out, 0);
            out.push_str(";\n");
        }
        Stmt::Return { value, .. } => {
            out.push_str(&pad);
            out.push_str("return");
            if let Some(e) = value {
                out.push(' ');
                print_expr(e, out, 0);
            }
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            out.push_str(&pad);
            out.push_str("if (");
            print_expr(cond, out, 0);
            out.push_str(") {\n");
            for s in then_branch {
                print_stmt(s, out, depth + 1);
            }
            out.push_str(&pad);
            out.push('}');
            if !else_branch.is_empty() {
                out.push_str(" else {\n");
                for s in else_branch {
                    print_stmt(s, out, depth + 1);
                }
                out.push_str(&pad);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            out.push_str(&pad);
            out.push_str("while (");
            print_expr(cond, out, 0);
            out.push_str(") {\n");
            for s in body {
                print_stmt(s, out, depth + 1);
            }
            out.push_str(&pad);
            out.push_str("}\n");
        }
    }
}

/// Binding strength of each operator level; higher binds tighter.
fn binary_prec(op: &str) -> u8 {
    match op {
        "==" | "!=" => 1,
        "<" | ">" | "<=" | ">=" => 2,
        "+" | "-" => 3,
        "*" | "/" => 4,
        _ => 0,
    }
}

/// Prints `e`, parenthesizing when its binding strength is below the
/// surrounding context's `min_prec`.
fn print_expr(e: &Expr, out: &mut String, min_prec: u8) {
    match e {
        Expr::Name { name, .. } => out.push_str(name),
        Expr::This { .. } => out.push_str("this"),
        Expr::Null { .. } => out.push_str("null"),
        Expr::Int { value, .. } => out.push_str(&value.to_string()),
        Expr::Str { value, .. } => {
            out.push('"');
            out.push_str(value);
            out.push('"');
        }
        Expr::New { class, args, .. } => {
            out.push_str("new ");
            out.push_str(class);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out, 0);
            }
            out.push(')');
        }
        Expr::NewArray { elem, len, .. } => {
            out.push_str("new ");
            out.push_str(elem);
            out.push('[');
            print_expr(len, out, 0);
            out.push(']');
        }
        Expr::Cast { ty, expr, .. } => {
            // Casts bind like unary operators (level 5); the operand is
            // printed at postfix strength so nested binaries get parens.
            let needs = min_prec > 5;
            if needs {
                out.push('(');
            }
            out.push('(');
            out.push_str(&ty.display());
            out.push_str(") ");
            print_expr(expr, out, 6);
            if needs {
                out.push(')');
            }
        }
        Expr::Field { base, field, .. } => {
            print_expr(base, out, 6);
            out.push('.');
            out.push_str(field);
        }
        Expr::Index { base, index, .. } => {
            print_expr(base, out, 6);
            out.push('[');
            print_expr(index, out, 0);
            out.push(']');
        }
        Expr::Call {
            base, method, args, ..
        } => {
            if let Some(b) = base {
                print_expr(b, out, 6);
                out.push('.');
            }
            out.push_str(method);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out, 0);
            }
            out.push(')');
        }
        Expr::Binary { lhs, op, rhs, .. } => {
            let prec = binary_prec(op);
            let needs = prec < min_prec;
            if needs {
                out.push('(');
            }
            // Left-associative: left child at this level, right child one
            // tighter.
            print_expr(lhs, out, prec);
            out.push(' ');
            out.push_str(op);
            out.push(' ');
            print_expr(rhs, out, prec + 1);
            if needs {
                out.push(')');
            }
        }
        Expr::Unary { op, expr, .. } => {
            let needs = min_prec > 5;
            if needs {
                out.push('(');
            }
            out.push_str(op);
            print_expr(expr, out, 5);
            if needs {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    /// `print ∘ parse` must be a projection: applying it twice equals
    /// applying it once.
    fn assert_fixed_point(src: &str) {
        let p1 = parse(lex(src).unwrap()).unwrap();
        let printed1 = print_program(&p1);
        let p2 = parse(lex(&printed1).unwrap())
            .unwrap_or_else(|e| panic!("printed output failed to parse: {e}\n{printed1}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed1, printed2, "printing is not stable for:\n{src}");
    }

    #[test]
    fn classes_and_members() {
        assert_fixed_point(
            "class A extends Object { Object f; static A shared; A() {} \
             void m(Object p, int i) {} Object g() { return null; } }",
        );
    }

    #[test]
    fn statements() {
        assert_fixed_point(
            "class M { void m(Object p) { Object t = p; t = this.f; \
             if (1 < 2) { t = p; } else { p = t; } \
             while (1 == 1) { t = p; } return; } \
             Object f; }",
        );
    }

    #[test]
    fn expression_precedence_round_trips() {
        assert_fixed_point(
            "class M { void m(int a, int b) { \
             int x = a + b * 2; \
             int y = (a + b) * 2; \
             int z = a < b == b < a; \
             int w = -a + !b; \
             int v = -(a + b); } }",
        );
    }

    #[test]
    fn casts_calls_and_chains() {
        assert_fixed_point(
            "class Box { Object item; Object take() { return this.item; } } \
             class M { void m(Box b) { \
             Object o = (Object) b.take(); \
             Box c = (Box) o; \
             Object q = c.take(); \
             Object[] a = new Object[8]; \
             a[0] = b.take(); \
             Object e = a[1]; } }",
        );
    }

    #[test]
    fn parenthesized_cast_operand_preserved() {
        // (Box) (x) — the parens around a parenthesized operand may
        // disappear, but semantics (a cast of x) must survive.
        let src = "class Box {} class M { void m(Object x) { Box b = (Box) x; } }";
        assert_fixed_point(src);
        let p = parse(lex(src).unwrap()).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("(Box) x"));
    }

    #[test]
    fn strings_and_literals() {
        assert_fixed_point(
            r#"class M { void m() { String s = "hello"; int i = 42; Object n = null; } }"#,
        );
    }
}
