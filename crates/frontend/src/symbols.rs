//! The declaration pass: classes, fields, statics and method signatures.

use std::collections::HashMap;

use dynsum_pag::{ClassId, MethodId, PagBuilder, VarId};

use crate::ast::{Program, TypeRef};
use crate::error::CompileError;
use crate::span::Span;

/// A static type: `None` is the non-pointer `int`, `Some(c)` a class
/// (array types are registered as classes named `T[]`).
pub(crate) type Ty = Option<ClassId>;

/// A resolved method signature.
#[derive(Debug, Clone)]
#[allow(dead_code)] // `is_ctor` is kept for completeness of the signature record
pub(crate) struct MethodSym {
    /// PAG method id.
    pub id: MethodId,
    /// Declaring class.
    pub owner: ClassId,
    /// `static` flag.
    pub is_static: bool,
    /// Constructor flag.
    pub is_ctor: bool,
    /// Parameter names and types (excluding `this`).
    pub params: Vec<(String, Ty)>,
    /// Return type (`None` for `void`/`int` — no pointer flows out).
    pub ret: Ty,
    /// `true` when the declared return type is a pointer type.
    pub returns_pointer: bool,
    /// AST coordinates: `(class index, method index)` in the program.
    pub ast: (usize, usize),
}

/// Symbol tables produced by the declaration pass and consumed by
/// lowering and call-graph construction.
#[derive(Debug)]
pub(crate) struct Symbols {
    /// The PAG under construction (classes, globals and methods are
    /// already declared in it).
    pub builder: PagBuilder,
    /// Class name → id.
    pub classes: HashMap<String, ClassId>,
    /// Instance fields declared *directly at* a class.
    pub fields: HashMap<(ClassId, String), Ty>,
    /// Static fields (globals), declared directly at a class.
    pub statics: HashMap<(ClassId, String), (VarId, Ty)>,
    /// Methods declared directly at a class (constructors under
    /// `<init>`).
    pub methods: HashMap<(ClassId, String), MethodSym>,
    /// Element type of each array class.
    pub elem_of: HashMap<ClassId, Ty>,
    /// The auto-registered `String` class.
    pub string_class: ClassId,
}

impl Symbols {
    /// Runs the declaration pass over a parsed program.
    pub fn declare(program: &Program) -> Result<Symbols, CompileError> {
        let mut builder = PagBuilder::new();
        let mut classes: HashMap<String, ClassId> = HashMap::new();
        classes.insert("Object".to_owned(), builder.hierarchy().root());

        // Register classes topologically (supers first); detect unknown
        // supers and inheritance cycles.
        let mut remaining: Vec<usize> = (0..program.classes.len()).collect();
        loop {
            let before = remaining.len();
            remaining.retain(|&ci| {
                let c = &program.classes[ci];
                let sup_name = c.superclass.as_deref().unwrap_or("Object");
                match classes.get(sup_name) {
                    Some(&sup) => {
                        // Duplicate class names surface here as an error.
                        match builder.add_class(&c.name, Some(sup)) {
                            Ok(id) => {
                                classes.insert(c.name.clone(), id);
                                false
                            }
                            Err(_) => false, // reported below via re-check
                        }
                    }
                    None => true,
                }
            });
            if remaining.is_empty() {
                break;
            }
            if remaining.len() == before {
                let c = &program.classes[remaining[0]];
                return Err(CompileError::new(
                    c.span,
                    format!(
                        "class `{}` extends unknown or cyclic superclass `{}`",
                        c.name,
                        c.superclass.as_deref().unwrap_or("Object")
                    ),
                ));
            }
        }
        // Re-check duplicates (add_class silently skipped them above).
        {
            let mut seen = HashMap::new();
            for c in &program.classes {
                if let Some(_prev) = seen.insert(c.name.clone(), ()) {
                    return Err(CompileError::new(
                        c.span,
                        format!("duplicate class `{}`", c.name),
                    ));
                }
            }
        }

        let string_class = match classes.get("String") {
            Some(&c) => c,
            None => {
                let id = builder
                    .add_class("String", None)
                    .expect("String cannot collide here");
                classes.insert("String".to_owned(), id);
                id
            }
        };

        let mut syms = Symbols {
            builder,
            classes,
            fields: HashMap::new(),
            statics: HashMap::new(),
            methods: HashMap::new(),
            elem_of: HashMap::new(),
            string_class,
        };

        for (ci, c) in program.classes.iter().enumerate() {
            let cid = syms.classes[&c.name];
            for f in &c.fields {
                let ty = syms.resolve_ty(&f.ty)?;
                if syms.fields.insert((cid, f.name.clone()), ty).is_some() {
                    return Err(CompileError::new(
                        f.span,
                        format!("duplicate field `{}` in class `{}`", f.name, c.name),
                    ));
                }
            }
            for f in &c.statics {
                let ty = syms.resolve_ty(&f.ty)?;
                let gname = format!("{}.{}", c.name, f.name);
                let var = syms
                    .builder
                    .add_global(&gname, ty)
                    .map_err(|e| CompileError::new(f.span, e.to_string()))?;
                if syms
                    .statics
                    .insert((cid, f.name.clone()), (var, ty))
                    .is_some()
                {
                    return Err(CompileError::new(
                        f.span,
                        format!("duplicate static field `{}` in class `{}`", f.name, c.name),
                    ));
                }
            }
            for (mi, m) in c.methods.iter().enumerate() {
                let key_name = if m.is_ctor {
                    "<init>".to_owned()
                } else {
                    m.name.clone()
                };
                let pag_name = format!("{}.{}", c.name, key_name);
                let id = syms
                    .builder
                    .add_method(&pag_name, Some(cid))
                    .map_err(|e| CompileError::new(m.span, e.to_string()))?;
                let mut params = Vec::new();
                for p in &m.params {
                    let ty = syms.resolve_ty(&p.ty)?;
                    params.push((p.name.clone(), ty));
                }
                let ret = match &m.return_type {
                    Some(t) => syms.resolve_ty(t)?,
                    None => None,
                };
                let sym = MethodSym {
                    id,
                    owner: cid,
                    is_static: m.is_static,
                    is_ctor: m.is_ctor,
                    params,
                    returns_pointer: ret.is_some(),
                    ret,
                    ast: (ci, mi),
                };
                if syms.methods.insert((cid, key_name), sym).is_some() {
                    return Err(CompileError::new(
                        m.span,
                        format!(
                            "duplicate method `{}` in class `{}` (overloading is not supported)",
                            m.name, c.name
                        ),
                    ));
                }
            }
        }
        Ok(syms)
    }

    /// Resolves a syntactic type to a [`Ty`], registering array classes
    /// on first use.
    pub fn resolve_ty(&mut self, t: &TypeRef) -> Result<Ty, CompileError> {
        let elem: Ty = if t.name == "int" {
            None
        } else {
            match self.classes.get(&t.name) {
                Some(&c) => Some(c),
                None => {
                    return Err(CompileError::new(
                        t.span,
                        format!("unknown class `{}`", t.name),
                    ))
                }
            }
        };
        if !t.array {
            return Ok(elem);
        }
        Ok(Some(self.array_class(&t.name, elem, t.span)?))
    }

    /// The array class `T[]`, registered lazily.
    pub fn array_class(
        &mut self,
        elem_name: &str,
        elem: Ty,
        span: Span,
    ) -> Result<ClassId, CompileError> {
        let name = format!("{elem_name}[]");
        if let Some(&c) = self.classes.get(&name) {
            return Ok(c);
        }
        let id = self
            .builder
            .add_class(&name, None)
            .map_err(|e| CompileError::new(span, e.to_string()))?;
        self.classes.insert(name, id);
        self.elem_of.insert(id, elem);
        Ok(id)
    }

    /// Looks an instance field up through the superclass chain.
    pub fn instance_field(&self, class: ClassId, name: &str) -> Option<Ty> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&ty) = self.fields.get(&(c, name.to_owned())) {
                return Some(ty);
            }
            cur = self.builder.hierarchy().superclass(c);
        }
        None
    }

    /// Looks a static field up through the superclass chain.
    pub fn static_field(&self, class: ClassId, name: &str) -> Option<(VarId, Ty)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&(var, ty)) = self.statics.get(&(c, name.to_owned())) {
                return Some((var, ty));
            }
            cur = self.builder.hierarchy().superclass(c);
        }
        None
    }

    /// Resolves a method name against a class, walking the superclass
    /// chain (Java dynamic-dispatch lookup).
    pub fn lookup_method(&self, class: ClassId, name: &str) -> Option<&MethodSym> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) = self.methods.get(&(c, name.to_owned())) {
                return Some(m);
            }
            cur = self.builder.hierarchy().superclass(c);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn declare(src: &str) -> Symbols {
        Symbols::declare(&parse(lex(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn registers_classes_in_any_order() {
        let s = declare("class B extends A {} class A {}");
        let a = s.classes["A"];
        let b = s.classes["B"];
        assert_eq!(s.builder.hierarchy().superclass(b), Some(a));
    }

    #[test]
    fn rejects_unknown_superclass() {
        let p = parse(lex("class B extends Missing {}").unwrap()).unwrap();
        let e = Symbols::declare(&p).unwrap_err();
        assert!(e.message.contains("unknown or cyclic"));
    }

    #[test]
    fn string_is_auto_registered() {
        let s = declare("class A {}");
        assert!(s.classes.contains_key("String"));
    }

    #[test]
    fn fields_resolve_through_inheritance() {
        let s = declare("class A { Object f; } class B extends A {}");
        let b = s.classes["B"];
        assert_eq!(s.instance_field(b, "f"), Some(Some(s.classes["Object"])));
        assert_eq!(s.instance_field(b, "nope"), None);
    }

    #[test]
    fn statics_become_globals() {
        let s = declare("class A { static A shared; }");
        let a = s.classes["A"];
        let (var, ty) = s.static_field(a, "shared").unwrap();
        assert_eq!(ty, Some(a));
        assert_eq!(s.builder.hierarchy().name(ty.unwrap()), "A");
        let _ = var;
    }

    #[test]
    fn method_lookup_walks_up() {
        let s = declare("class A { void m() {} } class B extends A {}");
        let b = s.classes["B"];
        let m = s.lookup_method(b, "m").unwrap();
        assert_eq!(m.owner, s.classes["A"]);
        assert!(!m.is_static);
    }

    #[test]
    fn override_shadows_super() {
        let s = declare("class A { void m() {} } class B extends A { void m() {} }");
        let b = s.classes["B"];
        assert_eq!(s.lookup_method(b, "m").unwrap().owner, b);
    }

    #[test]
    fn constructors_register_under_init() {
        let s = declare("class A { A() {} }");
        let a = s.classes["A"];
        assert!(s.methods.contains_key(&(a, "<init>".to_owned())));
    }

    #[test]
    fn array_classes_registered_lazily() {
        let mut s = declare("class A { Object[] xs; }");
        assert!(s.classes.contains_key("Object[]"));
        let arr = s.classes["Object[]"];
        assert_eq!(s.elem_of[&arr], Some(s.classes["Object"]));
        // int[] as well:
        let t = TypeRef {
            name: "int".into(),
            array: true,
            span: Span::default(),
        };
        let ty = s.resolve_ty(&t).unwrap();
        assert_eq!(s.elem_of[&ty.unwrap()], None);
    }

    #[test]
    fn duplicate_methods_rejected() {
        let p = parse(lex("class A { void m() {} void m() {} }").unwrap()).unwrap();
        assert!(Symbols::declare(&p)
            .unwrap_err()
            .message
            .contains("duplicate method"));
    }

    #[test]
    fn int_is_non_pointer() {
        let mut s = declare("class A {}");
        let t = TypeRef {
            name: "int".into(),
            array: false,
            span: Span::default(),
        };
        assert_eq!(s.resolve_ty(&t).unwrap(), None);
    }
}
