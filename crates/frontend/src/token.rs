//! Tokens of the Java-subset language.

use crate::span::Span;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal (value is irrelevant to points-to analysis).
    Int(i64),
    /// A string literal (allocates a `String` object).
    Str(String),

    // Keywords.
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `static`
    Static,
    /// `void`
    Void,
    /// `new`
    New,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `this`
    This,
    /// `null`
    Null,

    // Punctuation.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Str(_) => "string literal".to_owned(),
            TokenKind::Class => "`class`".to_owned(),
            TokenKind::Extends => "`extends`".to_owned(),
            TokenKind::Static => "`static`".to_owned(),
            TokenKind::Void => "`void`".to_owned(),
            TokenKind::New => "`new`".to_owned(),
            TokenKind::Return => "`return`".to_owned(),
            TokenKind::If => "`if`".to_owned(),
            TokenKind::Else => "`else`".to_owned(),
            TokenKind::While => "`while`".to_owned(),
            TokenKind::This => "`this`".to_owned(),
            TokenKind::Null => "`null`".to_owned(),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::LBracket => "`[`".to_owned(),
            TokenKind::RBracket => "`]`".to_owned(),
            TokenKind::Semi => "`;`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::Dot => "`.`".to_owned(),
            TokenKind::Assign => "`=`".to_owned(),
            TokenKind::EqEq => "`==`".to_owned(),
            TokenKind::NotEq => "`!=`".to_owned(),
            TokenKind::Lt => "`<`".to_owned(),
            TokenKind::Gt => "`>`".to_owned(),
            TokenKind::Le => "`<=`".to_owned(),
            TokenKind::Ge => "`>=`".to_owned(),
            TokenKind::Plus => "`+`".to_owned(),
            TokenKind::Minus => "`-`".to_owned(),
            TokenKind::Star => "`*`".to_owned(),
            TokenKind::Slash => "`/`".to_owned(),
            TokenKind::Bang => "`!`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The kind (and payload, for identifiers and literals).
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_never_empty() {
        for k in [
            TokenKind::Class,
            TokenKind::Ident("x".into()),
            TokenKind::Int(3),
            TokenKind::Eof,
        ] {
            assert!(!k.describe().is_empty());
        }
    }
}
